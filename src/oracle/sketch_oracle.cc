#include "oracle/sketch_oracle.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/check.h"
#include "util/random.h"

namespace inflex {
namespace oracle {

namespace {

/// Max-heap entry for the lazy greedy: largest estimate first, ties broken
/// toward the smaller node id so replays are bit-identical.
struct HeapEntry {
  double est;
  graph::NodeId v;
};
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.est != b.est) return a.est < b.est;
    return a.v > b.v;
  }
};

}  // namespace

std::shared_ptr<const SketchOracle::Universe> SketchOracle::BuildUniverse()
    const {
  const size_t n = graph().num_nodes();
  const size_t m = graph().num_arcs();
  const size_t W = options().sketch_instances;
  // Pair ids (w·n + v) must fit uint32.
  INFLEX_CHECK_LT(static_cast<uint64_t>(W) * n, uint64_t{1} << 32);
  auto u = std::make_shared<Universe>();
  u->num_instances = W;
  Rng rng(options().seed + 0x536b696dULL);  // decorrelate from MC/snapshot use
  u->arc_thresholds.resize(W * m);
  for (float& t : u->arc_thresholds) t = static_cast<float>(rng.Uniform());
  u->pair_rank.resize(W * n);
  for (double& r : u->pair_rank) {
    r = rng.Uniform();
    // The bottom-k estimator divides by the k-th rank; keep ranks positive.
    if (r <= 0.0) r = 1e-12;
  }
  u->pair_order.resize(W * n);
  std::iota(u->pair_order.begin(), u->pair_order.end(), 0u);
  std::sort(u->pair_order.begin(), u->pair_order.end(),
            [&](uint32_t a, uint32_t b) {
              if (u->pair_rank[a] != u->pair_rank[b]) {
                return u->pair_rank[a] < u->pair_rank[b];
              }
              return a < b;
            });
  return u;
}

Result<std::shared_ptr<const SketchOracle::Universe>>
SketchOracle::GetOrBuildUniverse() {
  std::shared_ptr<const Universe> uni = universe_.load();
  if (uni != nullptr) return uni;
  std::lock_guard<std::mutex> lock(build_mu_);
  uni = universe_.load();
  if (uni != nullptr) return uni;
  uni = BuildUniverse();
  universe_.store(uni);
  builds_.fetch_add(1, std::memory_order_relaxed);
  return uni;
}

Status SketchOracle::Prepare() {
  std::lock_guard<std::mutex> lock(build_mu_);
  universe_.store(BuildUniverse());
  builds_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<im::SeedSelectionResult> SketchOracle::SelectSeeds(
    const simplex::TopicDistribution& weights, size_t k, uint64_t /*salt*/) {
  INFLEX_RETURN_NOT_OK(ValidateRequest(weights, k));
  INFLEX_ASSIGN_OR_RETURN(std::shared_ptr<const Universe> uni,
                          GetOrBuildUniverse());
  const graph::TopicGraph& g = graph();
  const size_t n = g.num_nodes();
  const size_t m = g.num_arcs();
  const size_t W = uni->num_instances;
  const size_t K = options().sketch_k;
  const graph::ArcProbabilities probs = g.ItemArcProbabilities(weights);

  // The live-edge subgraphs are never materialized: an arc's liveness in
  // instance w is decided inline during BFS by comparing its universe
  // threshold against the item's Eq. 1 probability (consistent across items
  // by construction — liveness only flips when the probability crosses the
  // stored threshold). The sketch pass prunes aggressively, so paying the
  // comparison per *visited* arc is far cheaper than realizing W CSRs per
  // item — that realization is what would dominate the per-delta cost.
  const auto arc_live = [&](size_t w, graph::ArcId a) {
    return uni->arc_thresholds[w * m + a] < probs[a];
  };

  // --- Build combined bottom-k sketches in one rank-ordered pass. ---------
  // Pair (w, v) joins the sketch of every u that reaches v in instance w.
  // Processing pairs by ascending rank with pruning at full sketches yields
  // the exact bottom-k: a full node's k entries all reach it with lower
  // ranks, and reachability containment already offered them to everything
  // upstream, so nothing upstream can still want the current pair.
  std::vector<uint32_t> sketch(n * K);
  std::vector<uint32_t> len(n, 0);
  std::vector<uint32_t> stamps(n, 0);
  uint32_t epoch = 0;
  std::vector<graph::NodeId> frontier;
  frontier.reserve(64);
  size_t num_full = 0;
  for (const uint32_t pid : uni->pair_order) {
    if (num_full == n) break;
    const size_t w = pid / n;
    const graph::NodeId v = static_cast<graph::NodeId>(pid % n);
    // If v is full, every u reaching v was already offered v's k lower-
    // ranked entries (containment), so no upstream sketch wants this pair
    // either — skip the whole BFS.
    if (len[v] >= K) continue;
    ++epoch;
    frontier.clear();
    frontier.push_back(v);
    stamps[v] = epoch;
    sketch[v * K + len[v]++] = pid;
    if (len[v] == K) ++num_full;
    for (size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId u = frontier[head];
      const auto sources = g.InNeighbors(u);
      const auto arc_ids = g.InArcIds(u);
      for (size_t i = 0; i < sources.size(); ++i) {
        const graph::NodeId x = sources[i];
        if (stamps[x] == epoch || !arc_live(w, arc_ids[i])) continue;
        stamps[x] = epoch;
        if (len[x] >= K) continue;  // prune: no insert, no expansion
        sketch[x * K + len[x]++] = pid;
        if (len[x] == K) ++num_full;
        frontier.push_back(x);
      }
    }
  }

  // --- Lazy greedy with sketch-estimated residuals, exact commits. --------
  std::vector<uint8_t> covered(W * n, 0);
  const double inv_w = 1.0 / static_cast<double>(W);
  im::SeedSelectionResult result;
  result.seeds.reserve(k);

  // Residual influence estimate in "pairs" units: with a partial sketch the
  // reachable-pair set is fully known, so count uncovered entries; with a
  // full one, scale the bottom-k cardinality estimate (k−1)/τ_k by the
  // uncovered fraction of the sketch (the SKIM residual heuristic).
  const auto estimate = [&](graph::NodeId u) -> double {
    const uint32_t l = len[u];
    uint32_t uncov = 0;
    const uint32_t* entries = sketch.data() + static_cast<size_t>(u) * K;
    for (uint32_t i = 0; i < l; ++i) uncov += covered[entries[i]] == 0;
    if (l < K) return static_cast<double>(uncov);
    const double tau = uni->pair_rank[entries[K - 1]];
    return (static_cast<double>(K - 1) / tau) * uncov /
           static_cast<double>(K);
  };

  // The sketches' job is prioritization only: they replace the O(n·W·σ)
  // exact first iteration that dominates snapshot-CELF++. Every candidate
  // that actually surfaces at the heap top is *sharpened* with an exact
  // residual gain (a dry-run forward BFS over the W instances) before it can
  // be accepted, so seed selection is exact lazy greedy on the W-realization
  // objective — sketch noise costs extra pops, never seed quality. Sharp
  // values are monotone non-increasing as coverage grows, which is what the
  // lazy rule needs; the sketch estimates seeding the heap are merely
  // near-admissible, the standard SKIM trade.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (graph::NodeId v = 0; v < n; ++v) {
    heap.push({estimate(v), v});
    ++result.num_evaluations;
  }
  // Dry-run scratch: the uncovered (instance, node) pairs a candidate would
  // cover, reused across evaluations so accepting a candidate is just
  // flipping the bytes the dry run collected.
  std::vector<size_t> would_cover;
  const auto exact_gain = [&](graph::NodeId s) {
    would_cover.clear();
    for (size_t w = 0; w < W; ++w) {
      ++epoch;
      frontier.clear();
      frontier.push_back(s);
      stamps[s] = epoch;
      for (size_t head = 0; head < frontier.size(); ++head) {
        const graph::NodeId u = frontier[head];
        // Reachability in a fixed realization is transitive: a covered node
        // was reached by an earlier seed, so its whole forward set in this
        // instance is covered too — stop expanding. Evaluations terminate at
        // the frontier of already-covered territory, so they get cheaper as
        // coverage grows.
        if (covered[w * n + u]) continue;
        would_cover.push_back(w * n + u);
        const auto targets = g.OutNeighbors(u);
        const graph::ArcId base = g.OutArcBegin(u);
        for (size_t i = 0; i < targets.size(); ++i) {
          const graph::NodeId x = targets[i];
          if (stamps[x] != epoch &&
              arc_live(w, static_cast<graph::ArcId>(base + i))) {
            stamps[x] = epoch;
            frontier.push_back(x);
          }
        }
      }
    }
    return static_cast<double>(would_cover.size());
  };

  size_t total_covered = 0;
  while (result.seeds.size() < k && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const double fresh = exact_gain(top.v);
    ++result.num_evaluations;
    // Near-ties defer to the smaller node id for determinism.
    if (!heap.empty() &&
        (fresh < heap.top().est ||
         (fresh == heap.top().est && heap.top().v < top.v))) {
      heap.push({fresh, top.v});
      continue;
    }
    for (const size_t pair : would_cover) covered[pair] = 1;
    total_covered += would_cover.size();
    result.seeds.push_back(top.v);
    result.marginal_gains.push_back(fresh * inv_w);
  }
  result.expected_spread = static_cast<double>(total_covered) * inv_w;
  return result;
}

}  // namespace oracle
}  // namespace inflex
