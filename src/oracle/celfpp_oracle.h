#ifndef INFLEX_ORACLE_CELFPP_ORACLE_H_
#define INFLEX_ORACLE_CELFPP_ORACLE_H_

#include "oracle/spread_oracle.h"

namespace inflex {
namespace oracle {

/// \brief The golden-reference backend: materialize Eq. 1 arc probabilities,
/// sample `num_snapshots` live-edge subgraphs, run CELF++ — exactly the
/// sequence `core::OfflineTicSeeds` performs and InflexIndex::Build trusts.
/// It stays the referee for the cheaper backends: snapshot averaging is an
/// unbiased σ estimator with no sketch/sampling shortcuts, so RIS and sketch
/// quality are always measured against it (check_bench_json.py enforces the
/// ratio). Every call samples fresh snapshots; nothing is shared or cached.
class CelfPpOracle final : public SpreadOracle {
 public:
  CelfPpOracle(const graph::TopicGraph* graph,
               const SpreadOracleOptions& options)
      : SpreadOracle(graph, options) {}

  OracleBackend backend() const override { return OracleBackend::kCelfPp; }

  Result<im::SeedSelectionResult> SelectSeeds(
      const simplex::TopicDistribution& weights, size_t k,
      uint64_t salt) override;
};

}  // namespace oracle
}  // namespace inflex

#endif  // INFLEX_ORACLE_CELFPP_ORACLE_H_
