#include "oracle/spread_oracle.h"

#include <utility>

#include "oracle/celfpp_oracle.h"
#include "oracle/ris_oracle.h"
#include "oracle/sketch_oracle.h"

namespace inflex {
namespace oracle {

const char* OracleBackendName(OracleBackend backend) {
  switch (backend) {
    case OracleBackend::kCelfPp:
      return "celfpp";
    case OracleBackend::kRis:
      return "ris";
    case OracleBackend::kSketch:
      return "sketch";
  }
  return "unknown";
}

Result<OracleBackend> ParseOracleBackend(const std::string& name) {
  if (name == "celfpp") return OracleBackend::kCelfPp;
  if (name == "ris") return OracleBackend::kRis;
  if (name == "sketch") return OracleBackend::kSketch;
  return Status::InvalidArgument("unknown oracle backend '" + name +
                                 "' (expected celfpp|ris|sketch)");
}

Status SpreadOracle::ValidateRequest(const simplex::TopicDistribution& weights,
                                     size_t k) const {
  if (weights.num_topics() != graph_->num_topics()) {
    return Status::InvalidArgument(
        "topic weights dimension does not match the graph");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > graph_->num_nodes()) {
    return Status::InvalidArgument("k exceeds the number of nodes");
  }
  return Status::OK();
}

Result<double> SpreadOracle::EstimateSpread(
    const simplex::TopicDistribution& weights,
    std::span<const graph::NodeId> seeds) const {
  if (weights.num_topics() != graph_->num_topics()) {
    return Status::InvalidArgument(
        "topic weights dimension does not match the graph");
  }
  const graph::ArcProbabilities probs = graph_->ItemArcProbabilities(weights);
  im::MonteCarloOptions mc;
  mc.num_simulations = options_.eval_simulations;
  mc.seed = options_.seed;
  mc.parallel = false;  // Callers sit on pool workers already.
  INFLEX_ASSIGN_OR_RETURN(im::SpreadEstimate est,
                          im::EstimateSpread(*graph_, probs, seeds, mc));
  return est.mean;
}

Result<std::unique_ptr<SpreadOracle>> MakeSpreadOracle(
    const graph::TopicGraph* graph, SpreadOracleOptions options) {
  if (graph == nullptr) {
    return Status::InvalidArgument("graph must not be null");
  }
  if (options.seed == 0) options.seed = 97;
  if (options.num_snapshots == 0) options.num_snapshots = 150;
  if (options.eval_simulations == 0) {
    return Status::InvalidArgument("eval_simulations must be positive");
  }
  switch (options.backend) {
    case OracleBackend::kCelfPp:
      return std::unique_ptr<SpreadOracle>(
          new CelfPpOracle(graph, options));
    case OracleBackend::kRis:
      return std::unique_ptr<SpreadOracle>(new RisOracle(graph, options));
    case OracleBackend::kSketch:
      if (options.sketch_instances == 0) {
        return Status::InvalidArgument("sketch_instances must be positive");
      }
      if (options.sketch_k < 2) {
        return Status::InvalidArgument(
            "sketch_k must be at least 2 (the bottom-k estimator divides by "
            "the k-th rank)");
      }
      return std::unique_ptr<SpreadOracle>(new SketchOracle(graph, options));
  }
  return Status::InvalidArgument("unknown oracle backend");
}

}  // namespace oracle
}  // namespace inflex
