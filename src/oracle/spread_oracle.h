#ifndef INFLEX_ORACLE_SPREAD_ORACLE_H_
#define INFLEX_ORACLE_SPREAD_ORACLE_H_

#include <memory>
#include <span>
#include <string>

#include "graph/topic_graph.h"
#include "im/spread_estimator.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace oracle {

/// \brief The pluggable seed-precompute backends (DESIGN.md §14).
enum class OracleBackend {
  /// CELF++ over a live-edge snapshot oracle — the original (and still
  /// golden-reference) precompute path of InflexIndex::Build and the
  /// maintenance plane. Highest cost: the first greedy iteration evaluates
  /// every node against every snapshot.
  kCelfPp,
  /// Reverse Influence Sampling / TIM-style seed selection (Tang et al.):
  /// sample RR sets once, then greedy maximum coverage. Orders of magnitude
  /// cheaper than CELF++ at matching (1 − 1/e − ε) quality.
  kRis,
  /// SKIM-style combined bottom-k reachability sketches (Cohen et al.):
  /// shared per-graph randomness ("the universe") is built once and reused
  /// read-only by every precompute; per-item selection is sketch-estimated
  /// greedy with exact residual-coverage commits.
  kSketch,
};

const char* OracleBackendName(OracleBackend backend);
Result<OracleBackend> ParseOracleBackend(const std::string& name);

/// \brief Tuning for a SpreadOracle. Zero-valued `seed` / `num_snapshots`
/// mean "inherit from context": an IndexMaintainer substitutes its own
/// `seed` / `oracle_snapshots`; MakeSpreadOracle falls back to 97 / 150.
struct SpreadOracleOptions {
  OracleBackend backend = OracleBackend::kCelfPp;
  uint64_t seed = 0;
  /// CELF++: live-edge snapshots behind the SnapshotSpreadOracle.
  size_t num_snapshots = 0;
  /// RIS: reverse-reachable sets to sample (0 = 64 · num_nodes).
  size_t num_rr_sets = 0;
  /// Sketch: live-edge instances behind the shared sketch universe.
  size_t sketch_instances = 64;
  /// Sketch: bottom-k sketch size per node. Relative estimation error is
  /// ~1/sqrt(k); 32 keeps near-tie mistakes within what submodularity
  /// forgives.
  size_t sketch_k = 32;
  /// Monte-Carlo simulations behind the default EstimateSpread.
  size_t eval_simulations = 400;
};

/// \brief A spread oracle answers the two questions the index-maintenance
/// plane asks per admitted catalog delta: "which k seeds?" and "how much
/// spread?" — on the item-specific IC instance of Eq. 1 (arc probabilities
/// p_{u,v} = Σ_z γ_z · p^z_{u,v} materialized from the topic weights).
///
/// Implementations must be safe for concurrent SelectSeeds/EstimateSpread
/// calls from multiple maintenance-pool workers; shared state (the sketch
/// universe) is published RCU-style behind an atomic shared_ptr so a
/// rebuild never blocks readers.
class SpreadOracle {
 public:
  virtual ~SpreadOracle() = default;

  virtual OracleBackend backend() const = 0;
  const char* name() const { return OracleBackendName(backend()); }

  /// Selects k seeds for the instance weighted by `weights`. `salt`
  /// decorrelates the backend's sampling across calls while staying
  /// deterministic — the maintainer passes the admission ticket, so a replay
  /// of the same admission sequence reproduces every seed list bit-for-bit.
  /// (The sketch backend deliberately ignores the salt: shared randomness
  /// across items is what makes its universe amortizable.)
  virtual Result<im::SeedSelectionResult> SelectSeeds(
      const simplex::TopicDistribution& weights, size_t k,
      uint64_t salt = 0) = 0;

  /// Estimates σ(S) on the `weights` instance. The default runs the common
  /// Monte-Carlo estimator (im::EstimateSpread), so A/B quality comparisons
  /// across backends share one referee.
  virtual Result<double> EstimateSpread(
      const simplex::TopicDistribution& weights,
      std::span<const graph::NodeId> seeds) const;

  /// (Re)builds any expensive shared state eagerly. Backends without shared
  /// state no-op; the sketch backend builds its universe and publishes it
  /// RCU-style (concurrent SelectSeeds keep the universe they pinned).
  /// Called from the maintainer pool, never from the serving path; also the
  /// hook for a future graph-generation change.
  virtual Status Prepare() { return Status::OK(); }

 protected:
  SpreadOracle(const graph::TopicGraph* graph,
               const SpreadOracleOptions& options)
      : graph_(graph), options_(options) {}

  /// Shared argument validation for SelectSeeds implementations.
  Status ValidateRequest(const simplex::TopicDistribution& weights,
                         size_t k) const;

  const graph::TopicGraph& graph() const { return *graph_; }
  const SpreadOracleOptions& options() const { return options_; }

 private:
  const graph::TopicGraph* graph_;
  SpreadOracleOptions options_;
};

/// Builds the backend selected by `options.backend`. The graph must outlive
/// the oracle. Fails on an unknown backend or degenerate tuning.
Result<std::unique_ptr<SpreadOracle>> MakeSpreadOracle(
    const graph::TopicGraph* graph, SpreadOracleOptions options);

}  // namespace oracle
}  // namespace inflex

#endif  // INFLEX_ORACLE_SPREAD_ORACLE_H_
