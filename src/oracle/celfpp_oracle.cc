#include "oracle/celfpp_oracle.h"

#include "im/celfpp.h"
#include "im/snapshot_oracle.h"

namespace inflex {
namespace oracle {

Result<im::SeedSelectionResult> CelfPpOracle::SelectSeeds(
    const simplex::TopicDistribution& weights, size_t k, uint64_t salt) {
  INFLEX_RETURN_NOT_OK(ValidateRequest(weights, k));
  const graph::ArcProbabilities probs = graph().ItemArcProbabilities(weights);
  im::SnapshotSpreadOracle::Options oopts;
  oopts.num_snapshots = options().num_snapshots;
  oopts.seed = options().seed + salt;
  INFLEX_ASSIGN_OR_RETURN(
      im::SnapshotSpreadOracle snapshots,
      im::SnapshotSpreadOracle::Create(graph(), probs, oopts));
  im::SeedSelectionOptions sel;
  // Precomputes already run one-per-pool-worker; keep each serial so a batch
  // of admitted deltas parallelizes across items, not within one.
  sel.parallel_first_iteration = false;
  return im::SelectSeedsCelfPp(&snapshots, k, sel);
}

}  // namespace oracle
}  // namespace inflex
