#include "quality/corpus.h"

#include <cmath>

#include "quality/json.h"

namespace inflex {
namespace quality {

const std::vector<std::string>& AllCorpusCategories() {
  static const std::vector<std::string> kAll = {
      kCategoryNearIndexPoint, kCategoryFarFromIndex,
      kCategorySegmentRestricted, kCategoryPostEviction,
      kCategoryPostDeltaChurn};
  return kAll;
}

Result<CategoryThreshold> RelevanceCorpus::ThresholdFor(
    const std::string& category) const {
  for (const CategoryThreshold& t : thresholds) {
    if (t.category == category) return t;
  }
  return Status::InvalidArgument("corpus has no threshold for category '" +
                                 category + "'");
}

namespace {

JsonValue MixtureToJson(const simplex::TopicDistribution& d) {
  JsonValue arr = JsonValue::MakeArray();
  for (const double p : d.probs()) arr.Append(JsonValue::MakeNumber(p));
  return arr;
}

Result<simplex::TopicDistribution> MixtureFromJson(const JsonValue& v,
                                                   const std::string& where) {
  if (!v.is_array() || v.array_items().empty()) {
    return Status::InvalidArgument(where + ": expected a mixture array");
  }
  std::vector<double> probs;
  probs.reserve(v.array_items().size());
  for (const JsonValue& p : v.array_items()) {
    if (!p.is_number()) {
      return Status::InvalidArgument(where + ": non-numeric mixture entry");
    }
    probs.push_back(p.number_value());
  }
  auto dist = simplex::TopicDistribution::Create(std::move(probs));
  if (!dist.ok()) {
    return Status::InvalidArgument(where + ": " + dist.status().message());
  }
  return std::move(dist).ValueOrDie();
}

JsonValue NodeListToJson(const std::vector<graph::NodeId>& nodes) {
  JsonValue arr = JsonValue::MakeArray();
  for (const graph::NodeId n : nodes) {
    arr.Append(JsonValue::MakeNumber(static_cast<double>(n)));
  }
  return arr;
}

Result<std::vector<graph::NodeId>> NodeListFromJson(const JsonValue& v,
                                                    const std::string& where) {
  if (!v.is_array()) {
    return Status::InvalidArgument(where + ": expected a node-id array");
  }
  std::vector<graph::NodeId> out;
  out.reserve(v.array_items().size());
  for (const JsonValue& n : v.array_items()) {
    if (!n.is_number() || n.number_value() < 0 ||
        n.number_value() != std::floor(n.number_value())) {
      return Status::InvalidArgument(where + ": non-integral node id");
    }
    out.push_back(static_cast<graph::NodeId>(n.number_value()));
  }
  return out;
}

#define CORPUS_GET_SIZE(obj, field, dest)                 \
  do {                                                    \
    INFLEX_ASSIGN_OR_RETURN(double _v, (obj)->GetNumber(field)); \
    (dest) = static_cast<size_t>(_v);                     \
  } while (false)

#define CORPUS_GET_U64(obj, field, dest)                  \
  do {                                                    \
    INFLEX_ASSIGN_OR_RETURN(double _v, (obj)->GetNumber(field)); \
    (dest) = static_cast<uint64_t>(_v);                   \
  } while (false)

Result<CorpusWorldConfig> WorldFromJson(const JsonValue* w) {
  CorpusWorldConfig c;
  CORPUS_GET_SIZE(w, "num_users", c.num_users);
  CORPUS_GET_SIZE(w, "num_topics", c.num_topics);
  CORPUS_GET_SIZE(w, "num_items", c.num_items);
  INFLEX_ASSIGN_OR_RETURN(c.avg_degree, w->GetNumber("avg_degree"));
  CORPUS_GET_U64(w, "dataset_seed", c.dataset_seed);
  CORPUS_GET_SIZE(w, "num_index_points", c.num_index_points);
  CORPUS_GET_SIZE(w, "seed_list_length", c.seed_list_length);
  CORPUS_GET_SIZE(w, "oracle_snapshots", c.oracle_snapshots);
  CORPUS_GET_SIZE(w, "dirichlet_samples", c.dirichlet_samples);
  CORPUS_GET_U64(w, "build_seed", c.build_seed);
  return c;
}

JsonValue WorldToJson(const CorpusWorldConfig& c) {
  JsonValue w = JsonValue::MakeObject();
  w.Set("num_users", JsonValue::MakeNumber(static_cast<double>(c.num_users)));
  w.Set("num_topics", JsonValue::MakeNumber(static_cast<double>(c.num_topics)));
  w.Set("num_items", JsonValue::MakeNumber(static_cast<double>(c.num_items)));
  w.Set("avg_degree", JsonValue::MakeNumber(c.avg_degree));
  w.Set("dataset_seed",
        JsonValue::MakeNumber(static_cast<double>(c.dataset_seed)));
  w.Set("num_index_points",
        JsonValue::MakeNumber(static_cast<double>(c.num_index_points)));
  w.Set("seed_list_length",
        JsonValue::MakeNumber(static_cast<double>(c.seed_list_length)));
  w.Set("oracle_snapshots",
        JsonValue::MakeNumber(static_cast<double>(c.oracle_snapshots)));
  w.Set("dirichlet_samples",
        JsonValue::MakeNumber(static_cast<double>(c.dirichlet_samples)));
  w.Set("build_seed", JsonValue::MakeNumber(static_cast<double>(c.build_seed)));
  return w;
}

Result<CorpusScenarioConfig> ScenarioFromJson(const JsonValue* s) {
  CorpusScenarioConfig c;
  INFLEX_ASSIGN_OR_RETURN(const JsonValue* evict, s->GetArray("evict_deltas"));
  for (size_t i = 0; i < evict->array_items().size(); ++i) {
    INFLEX_ASSIGN_OR_RETURN(
        simplex::TopicDistribution d,
        MixtureFromJson(evict->array_items()[i],
                        "scenario.evict_deltas[" + std::to_string(i) + "]"));
    c.evict_deltas.push_back(std::move(d));
  }
  INFLEX_ASSIGN_OR_RETURN(const JsonValue* churn, s->GetArray("churn_deltas"));
  for (size_t i = 0; i < churn->array_items().size(); ++i) {
    INFLEX_ASSIGN_OR_RETURN(
        simplex::TopicDistribution d,
        MixtureFromJson(churn->array_items()[i],
                        "scenario.churn_deltas[" + std::to_string(i) + "]"));
    c.churn_deltas.push_back(std::move(d));
  }
  CORPUS_GET_SIZE(s, "heat_repetitions", c.heat_repetitions);
  INFLEX_ASSIGN_OR_RETURN(c.admission_threshold,
                          s->GetNumber("admission_threshold"));
  CORPUS_GET_SIZE(s, "maintainer_snapshots", c.maintainer_snapshots);
  CORPUS_GET_U64(s, "maintainer_seed", c.maintainer_seed);
  CORPUS_GET_SIZE(s, "ris_rr_sets", c.ris_rr_sets);
  CORPUS_GET_SIZE(s, "sketch_instances", c.sketch_instances);
  CORPUS_GET_SIZE(s, "sketch_k", c.sketch_k);
  INFLEX_ASSIGN_OR_RETURN(c.eviction_score_threshold,
                          s->GetNumber("eviction_score_threshold"));
  CORPUS_GET_SIZE(s, "min_point_age_generations", c.min_point_age_generations);
  CORPUS_GET_SIZE(s, "min_index_points", c.min_index_points);
  return c;
}

JsonValue ScenarioToJson(const CorpusScenarioConfig& c) {
  JsonValue s = JsonValue::MakeObject();
  JsonValue evict = JsonValue::MakeArray();
  for (const auto& d : c.evict_deltas) evict.Append(MixtureToJson(d));
  s.Set("evict_deltas", std::move(evict));
  JsonValue churn = JsonValue::MakeArray();
  for (const auto& d : c.churn_deltas) churn.Append(MixtureToJson(d));
  s.Set("churn_deltas", std::move(churn));
  s.Set("heat_repetitions",
        JsonValue::MakeNumber(static_cast<double>(c.heat_repetitions)));
  s.Set("admission_threshold", JsonValue::MakeNumber(c.admission_threshold));
  s.Set("maintainer_snapshots",
        JsonValue::MakeNumber(static_cast<double>(c.maintainer_snapshots)));
  s.Set("maintainer_seed",
        JsonValue::MakeNumber(static_cast<double>(c.maintainer_seed)));
  s.Set("ris_rr_sets",
        JsonValue::MakeNumber(static_cast<double>(c.ris_rr_sets)));
  s.Set("sketch_instances",
        JsonValue::MakeNumber(static_cast<double>(c.sketch_instances)));
  s.Set("sketch_k", JsonValue::MakeNumber(static_cast<double>(c.sketch_k)));
  s.Set("eviction_score_threshold",
        JsonValue::MakeNumber(c.eviction_score_threshold));
  s.Set("min_point_age_generations",
        JsonValue::MakeNumber(static_cast<double>(c.min_point_age_generations)));
  s.Set("min_index_points",
        JsonValue::MakeNumber(static_cast<double>(c.min_index_points)));
  return s;
}

}  // namespace

Result<RelevanceCorpus> LoadCorpus(const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(JsonValue doc, LoadJsonFile(path));
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + ": corpus must be a JSON object");
  }
  RelevanceCorpus corpus;
  INFLEX_ASSIGN_OR_RETURN(corpus.name, doc.GetString("name"));
  INFLEX_ASSIGN_OR_RETURN(double version, doc.GetNumber("version"));
  corpus.version = static_cast<int>(version);
  CORPUS_GET_SIZE(&doc, "golden_oracle_snapshots",
                  corpus.golden_oracle_snapshots);
  CORPUS_GET_U64(&doc, "golden_oracle_seed", corpus.golden_oracle_seed);
  CORPUS_GET_SIZE(&doc, "mc_simulations", corpus.mc_simulations);
  CORPUS_GET_U64(&doc, "mc_seed", corpus.mc_seed);

  INFLEX_ASSIGN_OR_RETURN(const JsonValue* world, doc.GetObject("world"));
  INFLEX_ASSIGN_OR_RETURN(corpus.world, WorldFromJson(world));
  INFLEX_ASSIGN_OR_RETURN(const JsonValue* scenario,
                          doc.GetObject("scenario"));
  INFLEX_ASSIGN_OR_RETURN(corpus.scenario, ScenarioFromJson(scenario));

  INFLEX_ASSIGN_OR_RETURN(const JsonValue* thresholds,
                          doc.GetArray("thresholds"));
  for (size_t i = 0; i < thresholds->array_items().size(); ++i) {
    const JsonValue& t = thresholds->array_items()[i];
    const std::string where = "thresholds[" + std::to_string(i) + "]";
    if (!t.is_object()) {
      return Status::InvalidArgument(where + ": expected an object");
    }
    CategoryThreshold row;
    INFLEX_ASSIGN_OR_RETURN(row.category, t.GetString("category"));
    INFLEX_ASSIGN_OR_RETURN(row.min_mean_spread_ratio,
                            t.GetNumber("min_mean_spread_ratio"));
    INFLEX_ASSIGN_OR_RETURN(row.min_query_spread_ratio,
                            t.GetNumber("min_query_spread_ratio"));
    INFLEX_ASSIGN_OR_RETURN(row.min_mean_seed_overlap,
                            t.GetNumber("min_mean_seed_overlap"));
    corpus.thresholds.push_back(std::move(row));
  }

  INFLEX_ASSIGN_OR_RETURN(const JsonValue* queries, doc.GetArray("queries"));
  for (size_t i = 0; i < queries->array_items().size(); ++i) {
    const JsonValue& q = queries->array_items()[i];
    const std::string where = "queries[" + std::to_string(i) + "]";
    if (!q.is_object()) {
      return Status::InvalidArgument(where + ": expected an object");
    }
    CorpusQuery query;
    INFLEX_ASSIGN_OR_RETURN(query.id, q.GetString("id"));
    INFLEX_ASSIGN_OR_RETURN(query.category, q.GetString("category"));
    const JsonValue* item = q.Find("item");
    if (item == nullptr) {
      return Status::InvalidArgument(where + ": missing 'item'");
    }
    INFLEX_ASSIGN_OR_RETURN(query.item,
                            MixtureFromJson(*item, where + ".item"));
    CORPUS_GET_SIZE(&q, "k", query.k);
    if (const JsonValue* seg = q.Find("segment"); seg != nullptr) {
      INFLEX_ASSIGN_OR_RETURN(query.segment,
                              NodeListFromJson(*seg, where + ".segment"));
    }
    const JsonValue* golden = q.Find("golden_seeds");
    if (golden == nullptr) {
      return Status::InvalidArgument(where + ": missing 'golden_seeds'");
    }
    INFLEX_ASSIGN_OR_RETURN(
        query.golden_seeds,
        NodeListFromJson(*golden, where + ".golden_seeds"));
    INFLEX_ASSIGN_OR_RETURN(query.golden_spread,
                            q.GetNumber("golden_spread"));
    corpus.queries.push_back(std::move(query));
  }

  // Every query category must be gated: an ungated category would score but
  // never fail, which is exactly the silent hole the corpus exists to close.
  for (const CorpusQuery& q : corpus.queries) {
    INFLEX_RETURN_NOT_OK(corpus.ThresholdFor(q.category).status());
  }
  return corpus;
}

Status SaveCorpus(const RelevanceCorpus& corpus, const std::string& path) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", JsonValue::MakeString(corpus.name));
  doc.Set("version", JsonValue::MakeNumber(corpus.version));
  doc.Set("golden_oracle_snapshots",
          JsonValue::MakeNumber(
              static_cast<double>(corpus.golden_oracle_snapshots)));
  doc.Set("golden_oracle_seed",
          JsonValue::MakeNumber(static_cast<double>(corpus.golden_oracle_seed)));
  doc.Set("mc_simulations",
          JsonValue::MakeNumber(static_cast<double>(corpus.mc_simulations)));
  doc.Set("mc_seed",
          JsonValue::MakeNumber(static_cast<double>(corpus.mc_seed)));
  doc.Set("world", WorldToJson(corpus.world));
  doc.Set("scenario", ScenarioToJson(corpus.scenario));

  JsonValue thresholds = JsonValue::MakeArray();
  for (const CategoryThreshold& t : corpus.thresholds) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("category", JsonValue::MakeString(t.category));
    row.Set("min_mean_spread_ratio",
            JsonValue::MakeNumber(t.min_mean_spread_ratio));
    row.Set("min_query_spread_ratio",
            JsonValue::MakeNumber(t.min_query_spread_ratio));
    row.Set("min_mean_seed_overlap",
            JsonValue::MakeNumber(t.min_mean_seed_overlap));
    thresholds.Append(std::move(row));
  }
  doc.Set("thresholds", std::move(thresholds));

  JsonValue queries = JsonValue::MakeArray();
  for (const CorpusQuery& q : corpus.queries) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("id", JsonValue::MakeString(q.id));
    row.Set("category", JsonValue::MakeString(q.category));
    row.Set("item", MixtureToJson(q.item));
    row.Set("k", JsonValue::MakeNumber(static_cast<double>(q.k)));
    if (!q.segment.empty()) {
      row.Set("segment", NodeListToJson(q.segment));
    }
    row.Set("golden_seeds", NodeListToJson(q.golden_seeds));
    row.Set("golden_spread", JsonValue::MakeNumber(q.golden_spread));
    queries.Append(std::move(row));
  }
  doc.Set("queries", std::move(queries));
  return SaveJsonFile(doc, path);
}

}  // namespace quality
}  // namespace inflex
