#ifndef INFLEX_QUALITY_SCORER_H_
#define INFLEX_QUALITY_SCORER_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "inflex/index_maintainer.h"
#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "oracle/spread_oracle.h"
#include "quality/corpus.h"
#include "quality/json.h"
#include "util/status.h"

namespace inflex {
namespace quality {

/// \brief The rebuilt corpus world: the synthetic dataset and the base index
/// every scoring run reconstructs bit-identically from the corpus's
/// committed seeds. The dataset is heap-pinned because the index (and every
/// oracle) holds a raw pointer into its graph.
struct CorpusWorld {
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::shared_ptr<const core::InflexIndex> base_index;

  const graph::TopicGraph& graph() const { return dataset->graph; }
};

/// Rebuilds the world from `corpus.world` (GenerateSyntheticDataset +
/// InflexIndex::Build). Deterministic: same config → same graph, catalog,
/// index points, and seed lists.
Result<CorpusWorld> BuildCorpusWorld(const RelevanceCorpus& corpus);

/// \brief One scored query of one backend run.
struct QueryScore {
  std::string id;
  std::string category;
  /// The indexed pipeline's answer (post-scenario QueryEngine).
  std::vector<graph::NodeId> seeds;
  /// σ_MC(answer) under the corpus referee.
  double indexed_spread = 0.0;
  /// σ_MC(golden) as committed in the corpus.
  double golden_spread = 0.0;
  /// indexed_spread / golden_spread.
  double spread_ratio = 0.0;
  /// |answer ∩ golden| / |golden|.
  double seed_overlap = 0.0;
  bool epsilon_exact = false;
  bool from_cache = false;
};

/// \brief Per-category aggregation against the corpus floors.
struct CategoryScore {
  std::string category;
  size_t num_queries = 0;
  double mean_spread_ratio = 0.0;
  double min_spread_ratio = 0.0;
  double mean_seed_overlap = 0.0;
  CategoryThreshold threshold;
  bool passed = false;
};

/// \brief The result of replaying the scenario + corpus through one oracle
/// backend.
struct BackendReport {
  std::string backend;
  std::vector<QueryScore> queries;
  std::vector<CategoryScore> categories;
  /// Scenario replay accounting: the corpus encodes how many deltas must be
  /// admitted and how many points the decay sweep must evict; a mismatch
  /// means the maintenance plane drifted and the category labels no longer
  /// describe what was measured, so it fails the gate by itself.
  uint64_t deltas_admitted = 0;
  uint64_t points_evicted = 0;
  size_t final_index_points = 0;
  bool scenario_ok = false;
  /// scenario_ok AND every category passed.
  bool passed = false;
};

/// \brief The full quality report (tools/score_relevance output,
/// QUALITY_report.json when committed as the regression baseline).
struct QualityReport {
  std::string corpus_name;
  int corpus_version = 0;
  std::vector<BackendReport> backends;
  bool passed = false;
};

/// \brief Test seams letting ScoreBackend's corpus queries travel through an
/// alternative transport while the scenario replay still drives the scoring
/// stack directly. This is how the wire plane (frame codec, admission queue,
/// tenant routing) gets inside the relevance gate: a test wraps the hooked
/// engine in an InflexServer and answers each corpus query over a loopback
/// client — the report must come out byte-identical to the in-process run.
struct ScoreBackendHooks {
  /// Invoked once, after the scenario replay (churn → heat trace → decay
  /// sweep) has drained and before the first corpus query. The pointers are
  /// the scoring stack itself; they die when ScoreBackend returns.
  std::function<void(core::QueryEngine*, core::IndexMaintainer*)>
      on_scenario_ready;
  /// Replaces QueryEngine::Query for the corpus queries when set. Must
  /// answer from the same serving stack (`on_scenario_ready`'s engine) for
  /// the report to mean anything.
  std::function<Result<core::QueryResult>(const core::QueryRequest&)>
      transport;
  /// Invoked after the last corpus query, before ScoreBackend returns —
  /// transports that wrap the engine in a server tear it down here, while
  /// the engine is still alive.
  std::function<void()> on_queries_done;
};

/// Replays the maintenance scenario (churn → heat trace → decay sweep) on a
/// fresh QueryEngine + IndexMaintainer wired to `backend`, then runs every
/// corpus query and referees it against the goldens. `index_override`
/// replaces the base index (same graph) — the deliberate-degradation test's
/// seam; nullptr = world.base_index.
Result<BackendReport> ScoreBackend(
    const CorpusWorld& world, const RelevanceCorpus& corpus,
    oracle::OracleBackend backend,
    std::shared_ptr<const core::InflexIndex> index_override = nullptr,
    const ScoreBackendHooks& hooks = {});

/// Scores every backend in `backends` and assembles the report.
Result<QualityReport> ScoreCorpus(const CorpusWorld& world,
                                  const RelevanceCorpus& corpus,
                                  std::span<const oracle::OracleBackend> backends);

/// Builds a fresh corpus from the default world config: derives the scenario
/// deltas and the query fixture (all five categories) deterministically from
/// the world itself — mixtures are drawn from the synthetic catalog by their
/// KL geometry against the base index, never from an RNG — and leaves the
/// goldens zeroed for RegenerateGoldens. Used by `score_relevance --init`.
Result<RelevanceCorpus> GenerateCorpus();

/// Recomputes every query's golden seed set (exact CELF++ on the query's own
/// IC instance, candidate-masked for segment queries) and its MC-refereed
/// spread. Used by `--init` / `--regen`; scoring never calls this.
Status RegenerateGoldens(const CorpusWorld& world, RelevanceCorpus* corpus);

/// Deterministic JSON rendering of a report: no timestamps, no durations,
/// insertion-ordered keys, shortest-round-trip doubles — byte-identical
/// across runs of the same corpus on the same host.
JsonValue ReportToJson(const QualityReport& report);

}  // namespace quality
}  // namespace inflex

#endif  // INFLEX_QUALITY_SCORER_H_
