#include "quality/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace inflex {
namespace quality {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

void JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
}

Result<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("'" + key + "': expected a number");
  }
  return v->number_value();
}

Result<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) {
    return Status::InvalidArgument("'" + key + "': expected a bool");
  }
  return v->bool_value();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("'" + key + "': expected a string");
  }
  return v->string_value();
}

Result<const JsonValue*> JsonValue::GetArray(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("'" + key + "': expected an array");
  }
  return v;
}

Result<const JsonValue*> JsonValue::GetObject(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_object()) {
    return Status::InvalidArgument("'" + key + "': expected an object");
  }
  return v;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  // Integral values print without an exponent or trailing ".0" so node-id
  // lists and counts stay readable; everything else is shortest round-trip.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), static_cast<int64_t>(d));
    out->append(buf, end);
    return;
  }
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out->append(buf, end);
}

void Indent(std::string* out, int n) { out->append(static_cast<size_t>(n) * 2, ' '); }

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(number_, out);
      return;
    case Kind::kString:
      AppendEscaped(string_, out);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      // Scalar-only arrays (mixtures, seed lists) render on one line.
      bool scalar = true;
      for (const JsonValue& v : array_) {
        if (v.is_array() || v.is_object()) {
          scalar = false;
          break;
        }
      }
      if (scalar) {
        *out += "[";
        for (size_t i = 0; i < array_.size(); ++i) {
          if (i > 0) *out += ", ";
          array_[i].DumpTo(out, indent);
        }
        *out += "]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        Indent(out, indent + 1);
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      Indent(out, indent);
      *out += "]";
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        Indent(out, indent + 1);
        AppendEscaped(object_[i].first, out);
        *out += ": ";
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) *out += ",";
        *out += "\n";
      }
      Indent(out, indent);
      *out += "}";
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    INFLEX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after the JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        INFLEX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::MakeBool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::MakeBool(false));
      case 'n':
        return ParseLiteral("null", JsonValue());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const std::string& lit, JsonValue value) {
    if (text_.compare(pos_, lit.size(), lit) != 0) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Fail("malformed number");
    }
    return JsonValue::MakeNumber(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned cp = 0;
            const auto [ptr, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, cp, 16);
            if (ec != std::errc() || ptr != text_.data() + pos_ + 4) {
              return Fail("malformed \\u escape");
            }
            pos_ += 4;
            // The corpus is ASCII; encode BMP code points as UTF-8 and
            // reject surrogate pairs (nothing we write needs them).
            if (cp >= 0xD800 && cp <= 0xDFFF) {
              return Fail("surrogate \\u escapes are not supported");
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    JsonValue out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      SkipWhitespace();
      INFLEX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    JsonValue out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      INFLEX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWhitespace();
      INFLEX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      out.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> LoadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = ParseJson(ss.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Status SaveJsonFile(const JsonValue& value, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot write " + path);
  out << value.Dump();
  out.close();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace quality
}  // namespace inflex
