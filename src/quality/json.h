#ifndef INFLEX_QUALITY_JSON_H_
#define INFLEX_QUALITY_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace inflex {
namespace quality {

/// \brief Minimal JSON document model for the relevance corpus and the
/// quality report — the two version-controlled artifacts of the CI quality
/// gate (DESIGN.md §15).
///
/// The repo deliberately has no third-party JSON dependency (bench binaries
/// emit JSON by hand), but the corpus must be *read* back, so this is the
/// one place a parser lives. Scope is exactly RFC 8259 minus extensions:
/// objects keep insertion order (committed artifacts diff cleanly), numbers
/// are doubles serialized with shortest-round-trip formatting
/// (std::to_chars), so Parse(Dump(x)) == x bit-for-bit — the property the
/// scorer's determinism contract ("same corpus + salts → bit-identical
/// report") rests on.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& array_items() { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object field lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Sets (or replaces) an object field, preserving first-insertion order.
  void Set(const std::string& key, JsonValue value);

  /// Appends to an array.
  void Append(JsonValue value);

  /// Typed accessors that fail loudly with the offending path, so corpus
  /// loading errors read like "queries[3].k: expected number", not a crash.
  Result<double> GetNumber(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<const JsonValue*> GetArray(const std::string& key) const;
  Result<const JsonValue*> GetObject(const std::string& key) const;

  /// Serializes with 2-space indentation and '\n' line ends. Deterministic:
  /// object order is insertion order and doubles use shortest-round-trip
  /// formatting, so equal documents serialize to equal bytes.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Fails with a byte-offset diagnostic on malformed input.
Result<JsonValue> ParseJson(const std::string& text);

/// File convenience wrappers.
Result<JsonValue> LoadJsonFile(const std::string& path);
Status SaveJsonFile(const JsonValue& value, const std::string& path);

}  // namespace quality
}  // namespace inflex

#endif  // INFLEX_QUALITY_JSON_H_
