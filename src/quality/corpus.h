#ifndef INFLEX_QUALITY_CORPUS_H_
#define INFLEX_QUALITY_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/topic_graph.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace quality {

/// Query categories of the golden relevance corpus. Each names one way the
/// indexed (approximate) pipeline can drift from the exact topic-aware IM
/// objective; the CI gate holds a per-category spread-ratio floor so a speed
/// optimization that only hurts one regime still fails loudly (DESIGN.md
/// §15).
inline constexpr const char* kCategoryNearIndexPoint = "near-index-point";
inline constexpr const char* kCategoryFarFromIndex = "far-from-index";
inline constexpr const char* kCategorySegmentRestricted = "segment-restricted";
inline constexpr const char* kCategoryPostEviction = "post-eviction";
inline constexpr const char* kCategoryPostDeltaChurn = "post-delta-churn";

/// All categories, in report order.
const std::vector<std::string>& AllCorpusCategories();

/// \brief Deterministic recipe for the corpus world: the synthetic graph,
/// catalog, and base index every scoring run rebuilds bit-identically from
/// these seeds. Committed with the corpus so the goldens stay meaningful.
struct CorpusWorldConfig {
  size_t num_users = 240;
  size_t num_topics = 4;
  size_t num_items = 400;
  double avg_degree = 8.0;
  uint64_t dataset_seed = 71;
  /// Base-index build (InflexIndex::Build — exact CELF++ per point).
  size_t num_index_points = 20;
  size_t seed_list_length = 12;
  size_t oracle_snapshots = 40;
  size_t dirichlet_samples = 3000;
  uint64_t build_seed = 17;
};

/// \brief The maintenance scenario replayed (per oracle backend) before the
/// corpus queries run: a delta-churn phase grows the index, a heat trace
/// credits every point that should survive, and a decay sweep evicts the
/// deliberately-cold points. This is what makes the post-eviction and
/// post-delta-churn categories exercise a *mutated* index rather than the
/// pristine build.
struct CorpusScenarioConfig {
  /// Deltas admitted first; left cold by the heat trace; evicted by the
  /// sweep. The post-eviction queries sit at these mixtures.
  std::vector<simplex::TopicDistribution> evict_deltas;
  /// Deltas admitted second (they also age the evict points past the sweep's
  /// age gate). The post-delta-churn queries sit at these mixtures.
  std::vector<simplex::TopicDistribution> churn_deltas;
  /// Times the heat trace queries each surviving point's exact mixture.
  size_t heat_repetitions = 2;
  /// Maintainer tuning (admission + sweep rails). The oracle backend itself
  /// is the scorer's axis, not corpus state.
  double admission_threshold = 0.05;
  size_t maintainer_snapshots = 40;
  uint64_t maintainer_seed = 101;
  size_t ris_rr_sets = 20000;
  size_t sketch_instances = 32;
  size_t sketch_k = 16;
  double eviction_score_threshold = 0.5;
  size_t min_point_age_generations = 2;
  size_t min_index_points = 16;
};

/// \brief One golden query: a topic mixture plus the exact answer. The
/// golden seed set is CELF++ on the query's own IC instance (restricted to
/// `segment` when non-empty) — the paper's offline reference, recomputed
/// only by `tools/score_relevance --regen`.
struct CorpusQuery {
  std::string id;
  std::string category;
  simplex::TopicDistribution item;
  size_t k = 8;
  /// Non-empty only for segment-restricted queries: the node ids eligible
  /// as seeds (becomes QueryOptions::segment_mask and the golden CELF++
  /// candidate mask).
  std::vector<graph::NodeId> segment;
  /// Exact CELF++ seeds for this instance (length k).
  std::vector<graph::NodeId> golden_seeds;
  /// MC-refereed expected spread of golden_seeds (corpus mc_seed /
  /// mc_simulations referee).
  double golden_spread = 0.0;
};

/// \brief Per-category gate floors. A backend passes a category when the
/// mean and worst-query spread ratios and the mean seed overlap all clear
/// their floors.
struct CategoryThreshold {
  std::string category;
  double min_mean_spread_ratio = 0.90;
  double min_query_spread_ratio = 0.80;
  double min_mean_seed_overlap = 0.25;
};

/// \brief The version-controlled golden relevance corpus
/// (tests/corpus/golden_v1.json).
struct RelevanceCorpus {
  std::string name = "golden_v1";
  int version = 1;
  /// Exact-reference oracle behind the goldens (snapshot CELF++).
  size_t golden_oracle_snapshots = 120;
  uint64_t golden_oracle_seed = 20140324;
  /// The shared MC referee (spread-ratio numerator AND denominator).
  size_t mc_simulations = 500;
  uint64_t mc_seed = 4242;
  CorpusWorldConfig world;
  CorpusScenarioConfig scenario;
  std::vector<CategoryThreshold> thresholds;
  std::vector<CorpusQuery> queries;

  /// The floor row for `category` (InvalidArgument when absent — every
  /// category present in `queries` must carry a threshold).
  Result<CategoryThreshold> ThresholdFor(const std::string& category) const;
};

Result<RelevanceCorpus> LoadCorpus(const std::string& path);
Status SaveCorpus(const RelevanceCorpus& corpus, const std::string& path);

}  // namespace quality
}  // namespace inflex

#endif  // INFLEX_QUALITY_CORPUS_H_
