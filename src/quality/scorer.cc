#include "quality/scorer.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "im/celfpp.h"
#include "im/snapshot_oracle.h"
#include "im/spread_estimator.h"
#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "simplex/divergence.h"

namespace inflex {
namespace quality {
namespace {

/// min_i D_KL(γ_i ‖ γ_item) over `points` — the admission-test geometry
/// (IndexMaintainer::MinDivergence), recomputed here exactly so corpus
/// construction can predict which deltas the maintainer will admit.
double MinDivergenceToPoints(const std::vector<simplex::TopicVector>& points,
                             const simplex::TopicVector& item) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    best = std::min(best, simplex::KlDivergence(p, item));
  }
  return best;
}

std::vector<simplex::TopicVector> IndexPointVectors(
    const core::InflexIndex& index) {
  std::vector<simplex::TopicVector> points;
  points.reserve(index.num_index_points());
  for (uint32_t i = 0; i < index.num_index_points(); ++i) {
    points.push_back(index.index_point(i));
  }
  return points;
}

im::MonteCarloOptions RefereeOptions(const RelevanceCorpus& corpus) {
  im::MonteCarloOptions mc;
  mc.num_simulations = corpus.mc_simulations;
  mc.seed = corpus.mc_seed;
  // Serial: bit-reproducible independent of thread count AND of pool
  // availability, which the determinism contract (DESIGN.md §15) requires.
  mc.parallel = false;
  return mc;
}

/// |answer ∩ golden| / |golden|.
double SeedOverlap(const std::vector<graph::NodeId>& answer,
                   const std::vector<graph::NodeId>& golden) {
  if (golden.empty()) return 0.0;
  size_t hits = 0;
  for (graph::NodeId s : answer) {
    if (std::find(golden.begin(), golden.end(), s) != golden.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(golden.size());
}

std::vector<uint8_t> SegmentMask(const std::vector<graph::NodeId>& segment,
                                 size_t num_users) {
  std::vector<uint8_t> mask;
  if (segment.empty()) return mask;
  mask.assign(num_users, 0);
  for (graph::NodeId n : segment) {
    if (n < num_users) mask[n] = 1;
  }
  return mask;
}

}  // namespace

Result<CorpusWorld> BuildCorpusWorld(const RelevanceCorpus& corpus) {
  const CorpusWorldConfig& w = corpus.world;
  data::SyntheticDatasetOptions dopts;
  dopts.num_users = w.num_users;
  dopts.num_topics = w.num_topics;
  dopts.num_items = w.num_items;
  dopts.avg_degree = w.avg_degree;
  dopts.seed = w.dataset_seed;
  INFLEX_ASSIGN_OR_RETURN(data::SyntheticDataset dataset,
                          data::GenerateSyntheticDataset(dopts));

  CorpusWorld world;
  world.dataset =
      std::make_unique<data::SyntheticDataset>(std::move(dataset));

  core::InflexBuildOptions bopts;
  bopts.index_points.num_index_points = w.num_index_points;
  bopts.index_points.num_dirichlet_samples = w.dirichlet_samples;
  bopts.seed_list_length = w.seed_list_length;
  bopts.oracle_snapshots = w.oracle_snapshots;
  bopts.seed = w.build_seed;
  INFLEX_ASSIGN_OR_RETURN(
      core::InflexIndex index,
      core::InflexIndex::Build(world.dataset->graph, world.dataset->catalog,
                               bopts));
  world.base_index =
      std::make_shared<const core::InflexIndex>(std::move(index));
  return world;
}

Result<BackendReport> ScoreBackend(
    const CorpusWorld& world, const RelevanceCorpus& corpus,
    oracle::OracleBackend backend,
    std::shared_ptr<const core::InflexIndex> index_override,
    const ScoreBackendHooks& hooks) {
  const CorpusScenarioConfig& sc = corpus.scenario;
  std::shared_ptr<const core::InflexIndex> initial =
      index_override ? std::move(index_override) : world.base_index;
  const size_t base_points = initial->num_index_points();

  BackendReport report;
  report.backend = oracle::OracleBackendName(backend);

  // The serving stack under test: cache + hit accounting, exactly the
  // production wiring — the post-eviction category depends on the cache
  // epoch and the hit scores behaving correctly across the sweep.
  core::QueryEngineOptions eopts;
  eopts.enable_cache = true;
  eopts.enable_hit_accounting = true;
  core::QueryEngine engine(initial, eopts);

  core::IndexMaintainerOptions mopts;
  mopts.admission_threshold = sc.admission_threshold;
  mopts.oracle_snapshots = sc.maintainer_snapshots;
  mopts.seed = sc.maintainer_seed;
  mopts.oracle.backend = backend;
  mopts.oracle.num_rr_sets = sc.ris_rr_sets;
  mopts.oracle.sketch_instances = sc.sketch_instances;
  mopts.oracle.sketch_k = sc.sketch_k;
  mopts.max_batch_delay_ms = 0.0;  // no coalescing: one publish per delta
  mopts.eviction_score_threshold = sc.eviction_score_threshold;
  mopts.min_point_age_generations = sc.min_point_age_generations;
  mopts.min_index_points = sc.min_index_points;
  core::IndexMaintainer maintainer(initial, &world.graph(), &engine, mopts);

  // --- Scenario phase 1: delta churn. Evict-deltas first (the subsequent
  // churn publications age them past the sweep's grace period), drained
  // one-by-one so tickets, generations, and precompute salts replay
  // identically on every run.
  auto submit = [&](const simplex::TopicDistribution& item,
                    const std::string& id) -> Status {
    core::CatalogDelta delta;
    delta.id = id;
    delta.item = item;
    INFLEX_ASSIGN_OR_RETURN(core::DeltaReceipt receipt,
                            maintainer.SubmitDelta(delta));
    if (receipt.outcome == core::DeltaOutcome::kAdmitted) {
      ++report.deltas_admitted;
    }
    maintainer.Drain();
    return Status::OK();
  };
  for (size_t i = 0; i < sc.evict_deltas.size(); ++i) {
    INFLEX_RETURN_NOT_OK(submit(sc.evict_deltas[i], "evict-" + std::to_string(i)));
  }
  for (size_t i = 0; i < sc.churn_deltas.size(); ++i) {
    INFLEX_RETURN_NOT_OK(submit(sc.churn_deltas[i], "churn-" + std::to_string(i)));
  }

  // --- Scenario phase 2: heat trace. Query the exact mixture of every base
  // point and every churn point (ε-exact ⇒ each query credits precisely its
  // own point), leaving the evict points cold.
  const size_t heat_k = 8;
  for (size_t rep = 0; rep < sc.heat_repetitions; ++rep) {
    auto snapshot = engine.index_snapshot();
    for (uint32_t id = 0; id < base_points; ++id) {
      INFLEX_ASSIGN_OR_RETURN(
          simplex::TopicDistribution item,
          simplex::TopicDistribution::Create(snapshot->index_point(id)));
      core::QueryRequest req;
      req.item = std::move(item);
      req.k = heat_k;
      INFLEX_RETURN_NOT_OK(engine.Query(req).status());
    }
    for (const auto& churn : sc.churn_deltas) {
      core::QueryRequest req;
      req.item = churn;
      req.k = heat_k;
      INFLEX_RETURN_NOT_OK(engine.Query(req).status());
    }
  }

  // --- Scenario phase 3: decay sweep evicts exactly the cold points.
  maintainer.RequestDecaySweep();
  maintainer.Drain();

  const core::MaintenanceStats mstats = maintainer.stats();
  report.points_evicted = mstats.points_evicted;
  report.final_index_points = mstats.index_points;
  const size_t expected_admitted =
      sc.evict_deltas.size() + sc.churn_deltas.size();
  report.scenario_ok =
      report.deltas_admitted == expected_admitted &&
      report.points_evicted == sc.evict_deltas.size() &&
      report.final_index_points == base_points + sc.churn_deltas.size();

  // The scenario is replayed; hand the live stack to the transport seam
  // before any corpus query runs (see ScoreBackendHooks). The guard fires
  // on EVERY exit path below — a transport that wrapped the engine in a
  // server must get to tear it down while the engine is still alive.
  if (hooks.on_scenario_ready) hooks.on_scenario_ready(&engine, &maintainer);
  struct QueriesDoneGuard {
    const ScoreBackendHooks& hooks;
    ~QueriesDoneGuard() {
      if (hooks.on_queries_done) hooks.on_queries_done();
    }
  } queries_done_guard{hooks};

  // --- Corpus queries, serial, through the full serving stack.
  const im::MonteCarloOptions mc = RefereeOptions(corpus);
  std::map<std::string, std::vector<const QueryScore*>> by_category;
  for (const CorpusQuery& q : corpus.queries) {
    core::QueryRequest req;
    req.item = q.item;
    req.k = q.k;
    req.options.segment_mask = SegmentMask(q.segment, world.graph().num_nodes());
    INFLEX_ASSIGN_OR_RETURN(
        core::QueryResult answer,
        hooks.transport ? hooks.transport(req) : engine.Query(req));

    QueryScore score;
    score.id = q.id;
    score.category = q.category;
    score.seeds.assign(answer.seeds.begin(), answer.seeds.end());
    score.epsilon_exact = answer.epsilon_exact;
    score.from_cache = answer.from_cache;
    score.golden_spread = q.golden_spread;

    const graph::ArcProbabilities arc_probs =
        world.graph().ItemArcProbabilities(q.item);
    INFLEX_ASSIGN_OR_RETURN(
        im::SpreadEstimate est,
        im::EstimateSpread(world.graph(), arc_probs, score.seeds, mc));
    score.indexed_spread = est.mean;
    score.spread_ratio =
        q.golden_spread > 0.0 ? score.indexed_spread / q.golden_spread : 0.0;
    score.seed_overlap = SeedOverlap(score.seeds, q.golden_seeds);
    report.queries.push_back(std::move(score));
  }
  for (const QueryScore& s : report.queries) {
    by_category[s.category].push_back(&s);
  }

  // --- Per-category aggregation against the committed floors.
  bool all_passed = true;
  for (const std::string& category : AllCorpusCategories()) {
    auto it = by_category.find(category);
    if (it == by_category.end()) continue;
    const auto& scores = it->second;
    CategoryScore cat;
    cat.category = category;
    cat.num_queries = scores.size();
    cat.min_spread_ratio = std::numeric_limits<double>::infinity();
    for (const QueryScore* s : scores) {
      cat.mean_spread_ratio += s->spread_ratio;
      cat.mean_seed_overlap += s->seed_overlap;
      cat.min_spread_ratio = std::min(cat.min_spread_ratio, s->spread_ratio);
    }
    cat.mean_spread_ratio /= static_cast<double>(scores.size());
    cat.mean_seed_overlap /= static_cast<double>(scores.size());
    INFLEX_ASSIGN_OR_RETURN(cat.threshold, corpus.ThresholdFor(category));
    cat.passed = cat.mean_spread_ratio >= cat.threshold.min_mean_spread_ratio &&
                 cat.min_spread_ratio >= cat.threshold.min_query_spread_ratio &&
                 cat.mean_seed_overlap >= cat.threshold.min_mean_seed_overlap;
    all_passed = all_passed && cat.passed;
    report.categories.push_back(std::move(cat));
  }
  report.passed = report.scenario_ok && all_passed;
  return report;
}

Result<QualityReport> ScoreCorpus(
    const CorpusWorld& world, const RelevanceCorpus& corpus,
    std::span<const oracle::OracleBackend> backends) {
  QualityReport report;
  report.corpus_name = corpus.name;
  report.corpus_version = corpus.version;
  report.passed = true;
  for (oracle::OracleBackend backend : backends) {
    INFLEX_ASSIGN_OR_RETURN(BackendReport b,
                            ScoreBackend(world, corpus, backend));
    report.passed = report.passed && b.passed;
    report.backends.push_back(std::move(b));
  }
  return report;
}

Result<RelevanceCorpus> GenerateCorpus() {
  RelevanceCorpus corpus;
  INFLEX_ASSIGN_OR_RETURN(CorpusWorld world, BuildCorpusWorld(corpus));
  const auto& catalog = world.dataset->catalog;
  const std::vector<simplex::TopicVector> points =
      IndexPointVectors(*world.base_index);

  // KL geometry of every catalog item against the base index. All corpus
  // mixtures are drawn FROM the catalog by this geometry — no RNG — so
  // regeneration is exactly reproducible from the committed world config.
  std::vector<std::pair<double, size_t>> by_distance;  // (min-KL, item)
  by_distance.reserve(catalog.size());
  for (size_t j = 0; j < catalog.size(); ++j) {
    by_distance.emplace_back(
        MinDivergenceToPoints(points, catalog[j].probs()), j);
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;  // far first
              return a.second < b.second;
            });

  std::set<size_t> used;
  // Deltas must stay admittable against base ∪ previously-chosen deltas
  // (the maintainer re-tests against the live index at submission).
  std::vector<simplex::TopicVector> chosen_deltas;
  auto pick_deltas = [&](size_t count, double min_base_kl,
                         std::vector<simplex::TopicDistribution>* out) {
    for (const auto& [dist, j] : by_distance) {
      if (out->size() == count) break;
      if (dist <= min_base_kl || used.count(j)) continue;
      if (MinDivergenceToPoints(chosen_deltas, catalog[j].probs()) <=
          corpus.scenario.admission_threshold) {
        continue;
      }
      used.insert(j);
      chosen_deltas.push_back(catalog[j].probs());
      out->push_back(catalog[j]);
    }
  };
  pick_deltas(2, 0.15, &corpus.scenario.evict_deltas);
  pick_deltas(3, 0.15, &corpus.scenario.churn_deltas);
  if (corpus.scenario.evict_deltas.size() != 2 ||
      corpus.scenario.churn_deltas.size() != 3) {
    return Status::Internal(
        "corpus world has too few catalog items far enough from the index "
        "to build the churn scenario");
  }

  auto add_query = [&](const std::string& category, size_t ordinal,
                       const simplex::TopicDistribution& item,
                       std::vector<graph::NodeId> segment = {}) {
    CorpusQuery q;
    q.id = category + "-" + std::to_string(ordinal);
    q.category = category;
    q.item = item;
    q.segment = std::move(segment);
    corpus.queries.push_back(std::move(q));
  };

  // far-from-index: the most distant items that stay distant from the churn
  // points too (those join the index before the corpus queries run).
  size_t far_count = 0;
  for (const auto& [dist, j] : by_distance) {
    if (far_count == 4) break;
    if (dist <= 0.10 || used.count(j)) continue;
    if (MinDivergenceToPoints(chosen_deltas, catalog[j].probs()) <= 0.10) {
      continue;
    }
    used.insert(j);
    add_query(kCategoryFarFromIndex, far_count++, catalog[j]);
  }

  // near-index-point: the closest items that are NOT ε-exact copies of a
  // point — they must exercise retrieval + aggregation, not the shortcut.
  size_t near_count = 0;
  for (auto it = by_distance.rbegin(); it != by_distance.rend(); ++it) {
    if (near_count == 4) break;
    const auto& [dist, j] = *it;
    if (dist <= 1e-4 || used.count(j)) continue;
    if (dist > 0.02) break;  // ascending scan left the near regime
    used.insert(j);
    add_query(kCategoryNearIndexPoint, near_count++, catalog[j]);
  }
  if (near_count < 2) {
    return Status::Internal(
        "corpus world has too few catalog items near the index points");
  }

  // segment-restricted: moderate-distance items, each restricted to the
  // community of its primary topic (where that topic's influencers live, so
  // retrieved seed lists always contain segment members).
  size_t seg_count = 0;
  const auto& community = world.dataset->user_community;
  for (size_t j = 0; j < catalog.size(); ++j) {
    if (seg_count == 3) break;
    if (used.count(j)) continue;
    const double dist = MinDivergenceToPoints(points, catalog[j].probs());
    if (dist < 0.005 || dist > 0.05) continue;
    const auto& probs = catalog[j].probs();
    const uint32_t topic = static_cast<uint32_t>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
    std::vector<graph::NodeId> segment;
    for (graph::NodeId n = 0; n < community.size(); ++n) {
      if (community[n] == topic) segment.push_back(n);
    }
    if (segment.size() < 16) continue;
    used.insert(j);
    add_query(kCategorySegmentRestricted, seg_count++, catalog[j],
              std::move(segment));
  }
  if (seg_count < 2) {
    return Status::Internal("could not assemble segment-restricted queries");
  }

  // post-eviction: the evicted mixtures themselves — after the sweep the
  // index must answer them from surviving neighbors, through a cache whose
  // stale entries reference renumbered points.
  for (size_t i = 0; i < corpus.scenario.evict_deltas.size(); ++i) {
    add_query(kCategoryPostEviction, i, corpus.scenario.evict_deltas[i]);
  }
  // post-delta-churn: the churn mixtures — ε-exact against points whose
  // seed lists came from the backend under test (the one category where the
  // oracle backend is the entire answer).
  for (size_t i = 0; i < corpus.scenario.churn_deltas.size(); ++i) {
    add_query(kCategoryPostDeltaChurn, i, corpus.scenario.churn_deltas[i]);
  }

  // Floors calibrated from the seed report with margin: the healthy
  // pipeline clears them comfortably, a regression in any one regime
  // trips its row. Post-eviction is intrinsically the weakest regime —
  // the index answers an evicted mixture from surviving neighbors, so its
  // ratio floor is lower and seed overlap is not gated at all.
  auto add_threshold = [&](const std::string& category, double mean_ratio,
                           double query_ratio, double overlap) {
    CategoryThreshold t;
    t.category = category;
    t.min_mean_spread_ratio = mean_ratio;
    t.min_query_spread_ratio = query_ratio;
    t.min_mean_seed_overlap = overlap;
    corpus.thresholds.push_back(std::move(t));
  };
  add_threshold(kCategoryNearIndexPoint, 0.95, 0.90, 0.50);
  add_threshold(kCategoryFarFromIndex, 0.92, 0.85, 0.40);
  add_threshold(kCategorySegmentRestricted, 0.92, 0.85, 0.40);
  add_threshold(kCategoryPostEviction, 0.80, 0.70, 0.0);
  add_threshold(kCategoryPostDeltaChurn, 0.92, 0.85, 0.35);

  INFLEX_RETURN_NOT_OK(RegenerateGoldens(world, &corpus));
  return corpus;
}

Status RegenerateGoldens(const CorpusWorld& world, RelevanceCorpus* corpus) {
  const im::MonteCarloOptions mc = RefereeOptions(*corpus);
  for (CorpusQuery& q : corpus->queries) {
    const graph::ArcProbabilities arc_probs =
        world.graph().ItemArcProbabilities(q.item);
    im::SnapshotSpreadOracle::Options oopts;
    oopts.num_snapshots = corpus->golden_oracle_snapshots;
    oopts.seed = corpus->golden_oracle_seed;
    INFLEX_ASSIGN_OR_RETURN(
        im::SnapshotSpreadOracle oracle,
        im::SnapshotSpreadOracle::Create(world.graph(), arc_probs, oopts));
    im::SeedSelectionOptions sopts;
    sopts.candidate_mask = SegmentMask(q.segment, world.graph().num_nodes());
    INFLEX_ASSIGN_OR_RETURN(im::SeedSelectionResult golden,
                            im::SelectSeedsCelfPp(&oracle, q.k, sopts));
    q.golden_seeds = std::move(golden.seeds);
    INFLEX_ASSIGN_OR_RETURN(
        im::SpreadEstimate est,
        im::EstimateSpread(world.graph(), arc_probs, q.golden_seeds, mc));
    q.golden_spread = est.mean;
  }
  return Status::OK();
}

JsonValue ReportToJson(const QualityReport& report) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("schema", JsonValue::MakeString("inflex-quality-v1"));
  JsonValue corpus = JsonValue::MakeObject();
  corpus.Set("name", JsonValue::MakeString(report.corpus_name));
  corpus.Set("version",
             JsonValue::MakeNumber(static_cast<double>(report.corpus_version)));
  root.Set("corpus", std::move(corpus));
  root.Set("passed", JsonValue::MakeBool(report.passed));

  JsonValue backends = JsonValue::MakeArray();
  for (const BackendReport& b : report.backends) {
    JsonValue jb = JsonValue::MakeObject();
    jb.Set("backend", JsonValue::MakeString(b.backend));
    jb.Set("passed", JsonValue::MakeBool(b.passed));

    JsonValue scenario = JsonValue::MakeObject();
    scenario.Set("deltas_admitted",
                 JsonValue::MakeNumber(static_cast<double>(b.deltas_admitted)));
    scenario.Set("points_evicted",
                 JsonValue::MakeNumber(static_cast<double>(b.points_evicted)));
    scenario.Set(
        "final_index_points",
        JsonValue::MakeNumber(static_cast<double>(b.final_index_points)));
    scenario.Set("ok", JsonValue::MakeBool(b.scenario_ok));
    jb.Set("scenario", std::move(scenario));

    JsonValue categories = JsonValue::MakeArray();
    for (const CategoryScore& c : b.categories) {
      JsonValue jc = JsonValue::MakeObject();
      jc.Set("category", JsonValue::MakeString(c.category));
      jc.Set("num_queries",
             JsonValue::MakeNumber(static_cast<double>(c.num_queries)));
      jc.Set("mean_spread_ratio", JsonValue::MakeNumber(c.mean_spread_ratio));
      jc.Set("min_spread_ratio", JsonValue::MakeNumber(c.min_spread_ratio));
      jc.Set("mean_seed_overlap", JsonValue::MakeNumber(c.mean_seed_overlap));
      JsonValue jt = JsonValue::MakeObject();
      jt.Set("min_mean_spread_ratio",
             JsonValue::MakeNumber(c.threshold.min_mean_spread_ratio));
      jt.Set("min_query_spread_ratio",
             JsonValue::MakeNumber(c.threshold.min_query_spread_ratio));
      jt.Set("min_mean_seed_overlap",
             JsonValue::MakeNumber(c.threshold.min_mean_seed_overlap));
      jc.Set("thresholds", std::move(jt));
      jc.Set("passed", JsonValue::MakeBool(c.passed));
      categories.Append(std::move(jc));
    }
    jb.Set("categories", std::move(categories));

    JsonValue queries = JsonValue::MakeArray();
    for (const QueryScore& s : b.queries) {
      JsonValue js = JsonValue::MakeObject();
      js.Set("id", JsonValue::MakeString(s.id));
      js.Set("category", JsonValue::MakeString(s.category));
      JsonValue seeds = JsonValue::MakeArray();
      for (graph::NodeId n : s.seeds) {
        seeds.Append(JsonValue::MakeNumber(static_cast<double>(n)));
      }
      js.Set("seeds", std::move(seeds));
      js.Set("indexed_spread", JsonValue::MakeNumber(s.indexed_spread));
      js.Set("golden_spread", JsonValue::MakeNumber(s.golden_spread));
      js.Set("spread_ratio", JsonValue::MakeNumber(s.spread_ratio));
      js.Set("seed_overlap", JsonValue::MakeNumber(s.seed_overlap));
      js.Set("epsilon_exact", JsonValue::MakeBool(s.epsilon_exact));
      js.Set("from_cache", JsonValue::MakeBool(s.from_cache));
      queries.Append(std::move(js));
    }
    jb.Set("queries", std::move(queries));
    backends.Append(std::move(jb));
  }
  root.Set("backends", std::move(backends));
  return root;
}

}  // namespace quality
}  // namespace inflex
