#ifndef INFLEX_RANK_KEMENY_H_
#define INFLEX_RANK_KEMENY_H_

#include <vector>

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// Pairwise Kemeny cost of a candidate ranking against the (weighted) input
/// lists: for every ordered pair (x before y) in `ranking`, the total weight
/// of lists preferring y over x (top-ℓ semantics, as in PreferenceMatrix).
/// This is the objective that Kemeny-optimal aggregation minimizes and that
/// Borda / Copeland / MC4 approximate. `ranking` must cover exactly the
/// union of the lists.
Result<double> PairwiseKemenyCost(const RankedList& ranking,
                                  const std::vector<RankedList>& lists,
                                  const std::vector<double>& weights);

/// Exact Kemeny-optimal rank aggregation by Held-Karp dynamic programming
/// over subsets — O(2^m · m²) time and O(2^m) space for a union of m items,
/// feasible for m ≤ ~20. The paper notes the problem is NP-hard for ≥ 4
/// lists (Dwork et al.); this solver provides ground truth for measuring
/// how close the fast aggregators get (`bench_ablation_kemeny`).
/// Fails when the union exceeds `max_union_size` or inputs are invalid.
Result<RankedList> ExactKemenyAggregate(const std::vector<RankedList>& lists,
                                        const std::vector<double>& weights,
                                        size_t max_union_size = 18);

/// Spearman footrule distance between two full rankings of the same items:
/// F(σ, τ) = Σ_i |pos_σ(i) − pos_τ(i)|. When `normalized`, divided by the
/// maximum ⌊m²/2⌋. Satisfies the Diaconis-Graham inequality
/// K ≤ F ≤ 2·K against the (unnormalized) Kendall distance — asserted by
/// property tests.
Result<double> FootruleDistance(const RankedList& a, const RankedList& b,
                                bool normalized = true);

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_KEMENY_H_
