#include "rank/markov_chain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rank/preference_matrix.h"

namespace inflex {
namespace rank {

Result<std::vector<double>> Mc4StationaryDistribution(
    const std::vector<RankedList>& lists, const std::vector<double>& weights,
    const Mc4Options& options) {
  if (options.damping <= 0.0 || options.damping > 1.0) {
    return Status::InvalidArgument("damping must lie in (0, 1]");
  }
  INFLEX_ASSIGN_OR_RETURN(PreferenceMatrix pm,
                          PreferenceMatrix::Build(lists, weights));
  const size_t m = pm.num_items();
  if (m == 1) return std::vector<double>{1.0};

  // Row-stochastic MC4 transition matrix: from v, propose v' uniformly
  // among the other m−1 items; accept when the majority prefers v'.
  // (Stored dense: U is small — the union of a few top-ℓ seed lists.)
  std::vector<double> transition(m * m, 0.0);
  const double proposal = 1.0 / static_cast<double>(m - 1);
  for (size_t v = 0; v < m; ++v) {
    double stay = 0.0;
    for (size_t w = 0; w < m; ++w) {
      if (v == w) continue;
      if (pm.MajorityPrefers(pm.items()[w], pm.items()[v])) {
        transition[v * m + w] = proposal;
      } else {
        stay += proposal;
      }
    }
    transition[v * m + v] = stay;
  }

  // Damped power iteration (teleportation guarantees a unique stationary
  // distribution even when the majority tournament has absorbing cycles).
  std::vector<double> pi(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m);
  const double teleport = (1.0 - options.damping) / static_cast<double>(m);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), teleport);
    for (size_t v = 0; v < m; ++v) {
      const double pv = options.damping * pi[v];
      if (pv == 0.0) continue;
      const double* row = transition.data() + v * m;
      for (size_t w = 0; w < m; ++w) next[w] += pv * row[w];
    }
    double l1 = 0.0;
    for (size_t v = 0; v < m; ++v) l1 += std::fabs(next[v] - pi[v]);
    pi.swap(next);
    if (l1 < options.tolerance) break;
  }
  return pi;
}

Result<RankedList> Mc4Aggregate(const std::vector<RankedList>& lists,
                                const std::vector<double>& weights,
                                const Mc4Options& options) {
  INFLEX_ASSIGN_OR_RETURN(std::vector<double> pi,
                          Mc4StationaryDistribution(lists, weights, options));
  const RankedList u = UnionOfLists(lists);
  std::vector<size_t> order(u.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pi[a] != pi[b]) return pi[a] > pi[b];
    return u[a] < u[b];
  });
  RankedList out(u.size());
  for (size_t i = 0; i < u.size(); ++i) out[i] = u[order[i]];
  return out;
}

}  // namespace rank
}  // namespace inflex
