#ifndef INFLEX_RANK_LOCAL_KEMENIZATION_H_
#define INFLEX_RANK_LOCAL_KEMENIZATION_H_

#include <vector>

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// Local Kemenization (Dwork et al., WWW 2001): greedy post-processing that
/// turns an initial aggregation into a *locally* Kemeny-optimal list — no
/// swap of two adjacent items can reduce the summed Kendall distance to the
/// inputs. Implemented, as in the paper, by insertion sort: each item is
/// bubbled up while the (weighted) majority of the input lists prefers it to
/// its predecessor. Pass empty `weights` for the unweighted variant.
///
/// The pass never worsens the weighted Kemeny objective (each accepted swap
/// strictly decreases it), which tests assert property-style.
Status LocalKemenization(const std::vector<RankedList>& lists,
                         const std::vector<double>& weights,
                         RankedList* aggregated);

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_LOCAL_KEMENIZATION_H_
