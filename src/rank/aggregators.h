#ifndef INFLEX_RANK_AGGREGATORS_H_
#define INFLEX_RANK_AGGREGATORS_H_

#include <vector>

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// Rank-aggregation families implemented by INFLEX (§4.2).
enum class AggregationMethod {
  /// Positional scoring (de Borda 1781); 5-approximation of Kemeny.
  kBorda,
  /// Pairwise majority tournament (Copeland 1951); Algorithm 2 when weighted.
  kCopeland,
  /// MC4 Markov-chain aggregation (Dwork et al. 2001) — the generalization
  /// of Copeland the paper cites; items ranked by stationary probability.
  kMarkovChainMc4,
};

/// \brief Options for AggregateRankings.
struct AggregationOptions {
  AggregationMethod method = AggregationMethod::kCopeland;
  /// Use the per-list importance weights; when false all lists count equally
  /// (the paper's unweighted Borda/Copeland columns in Table 1).
  bool use_weights = true;
  /// Apply the Local Kemenization post-processing pass (Dwork et al. 2001).
  bool local_kemenization = true;
};

/// Weighted Borda scores over the union U of the lists:
/// Borda^w(v) = Σ_j w_j · (ℓ − τ_j(v) + 1), summed over lists containing v
/// (a list that omits v contributes the neutral rank ℓ+1, i.e. zero), with
/// ℓ the maximum list length. Returned in U's first-appearance order.
/// Pass empty `weights` for the unweighted variant.
Result<std::vector<double>> WeightedBordaScores(
    const std::vector<RankedList>& lists, const std::vector<double>& weights);

/// Weighted Copeland scores (Algorithm 2): Copeland^w(v) = number of items
/// v' beaten by v under the weighted pairwise majority. Returned in U's
/// first-appearance order.
Result<std::vector<double>> WeightedCopelandScores(
    const std::vector<RankedList>& lists, const std::vector<double>& weights);

/// Full INFLEX aggregation pipeline: score with the chosen method, order by
/// descending score (ties broken by item id for determinism), optionally
/// Local-Kemenize against the weighted inputs, and truncate to the top-k.
/// `k` may exceed |U|, in which case all of U is returned — the paper's
/// mechanism for answering k > ℓ queries.
Result<RankedList> AggregateRankings(const std::vector<RankedList>& lists,
                                     const std::vector<double>& weights,
                                     size_t k,
                                     const AggregationOptions& options = {});

/// Mean (weighted) top-ℓ Kendall-τ distance from `candidate` to the input
/// lists — the Kemeny objective of Eq. 8 that aggregation approximates.
/// `candidate` is compared against each list after truncation to the shorter
/// of the two lengths.
Result<double> KemenyObjective(const RankedList& candidate,
                               const std::vector<RankedList>& lists,
                               const std::vector<double>& weights,
                               double top_l_penalty = 0.5);

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_AGGREGATORS_H_
