#include "rank/local_kemenization.h"

#include "rank/preference_matrix.h"

namespace inflex {
namespace rank {

Status LocalKemenization(const std::vector<RankedList>& lists,
                         const std::vector<double>& weights,
                         RankedList* aggregated) {
  INFLEX_RETURN_NOT_OK(ValidateRankedList(*aggregated));
  INFLEX_ASSIGN_OR_RETURN(PreferenceMatrix pm,
                          PreferenceMatrix::Build(lists, weights));
  RankedList& tau = *aggregated;
  // Insertion sort under the (non-transitive) majority relation: item at
  // position i bubbles up while it strictly beats its predecessor. Items the
  // input lists never mention cannot be compared and therefore never move.
  for (size_t i = 1; i < tau.size(); ++i) {
    size_t j = i;
    while (j > 0) {
      const Item above = tau[j - 1];
      const Item below = tau[j];
      if (pm.IndexOf(above) == PreferenceMatrix::npos ||
          pm.IndexOf(below) == PreferenceMatrix::npos) {
        break;
      }
      if (!pm.MajorityPrefers(below, above)) break;
      std::swap(tau[j - 1], tau[j]);
      --j;
    }
  }
  return Status::OK();
}

}  // namespace rank
}  // namespace inflex
