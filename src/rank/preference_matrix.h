#ifndef INFLEX_RANK_PREFERENCE_MATRIX_H_
#define INFLEX_RANK_PREFERENCE_MATRIX_H_

#include <unordered_map>
#include <vector>

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// \brief Dense weighted pairwise-preference tally over the union U of the
/// input lists: P(v, v') = Σ_j w_j · 1{τ_j ranks v ahead of v'}.
///
/// Top-ℓ semantics (matching the Copeland formulation in Algorithm 2 and the
/// Local Kemenization majority test): within a list, a present item is
/// preferred to an absent one; two absent items yield no vote.
///
/// Shared by weighted Copeland and by Local Kemenization so both see exactly
/// the same majority relation.
class PreferenceMatrix {
 public:
  /// Builds the tally. `weights` must be empty (treated as all-ones) or have
  /// one entry per list. Fails on mismatched sizes, negative weights, or
  /// duplicate items within a list.
  static Result<PreferenceMatrix> Build(const std::vector<RankedList>& lists,
                                        const std::vector<double>& weights);

  /// Items of U in first-appearance order.
  const RankedList& items() const { return items_; }
  size_t num_items() const { return items_.size(); }

  /// Total weight of lists preferring v over v'. Items must belong to U.
  double Preference(Item v, Item v_prime) const;

  /// True when the weighted majority strictly prefers v over v'.
  bool MajorityPrefers(Item v, Item v_prime) const {
    return Preference(v, v_prime) > Preference(v_prime, v);
  }

  /// Dense index of an item in [0, num_items()), or npos when not in U.
  size_t IndexOf(Item v) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  PreferenceMatrix() = default;

  RankedList items_;
  std::unordered_map<Item, size_t> index_;
  std::vector<double> tally_;  // num_items × num_items, row-major
};

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_PREFERENCE_MATRIX_H_
