#include "rank/kendall_tau.h"

#include <algorithm>
#include <unordered_map>

namespace inflex {
namespace rank {

Status ValidateRankedList(const RankedList& list) {
  RankedList sorted = list;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("ranked list contains duplicate items");
  }
  return Status::OK();
}

RankedList UnionOfLists(const std::vector<RankedList>& lists) {
  RankedList u;
  std::unordered_map<Item, bool> seen;
  for (const auto& list : lists) {
    for (Item v : list) {
      if (!seen[v]) {
        seen[v] = true;
        u.push_back(v);
      }
    }
  }
  return u;
}

Result<double> KendallTauFull(const RankedList& a, const RankedList& b,
                              bool normalized) {
  INFLEX_RETURN_NOT_OK(ValidateRankedList(a));
  INFLEX_RETURN_NOT_OK(ValidateRankedList(b));
  if (a.size() != b.size()) {
    return Status::InvalidArgument("full rankings must have equal length");
  }
  const size_t n = a.size();
  if (n < 2) return 0.0;

  std::unordered_map<Item, size_t> pos_b;
  pos_b.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) pos_b[b[i]] = i;

  // Map a's order into b-positions; discordant pairs = inversions.
  std::vector<size_t> mapped(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = pos_b.find(a[i]);
    if (it == pos_b.end()) {
      return Status::InvalidArgument(
          "full rankings must cover the same item set");
    }
    mapped[i] = it->second;
  }

  // O(n log n) inversion count via merge sort.
  std::vector<size_t> buf(n);
  size_t inversions = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo, j = mid, out = lo;
      while (i < mid && j < hi) {
        if (mapped[i] <= mapped[j]) {
          buf[out++] = mapped[i++];
        } else {
          inversions += mid - i;
          buf[out++] = mapped[j++];
        }
      }
      while (i < mid) buf[out++] = mapped[i++];
      while (j < hi) buf[out++] = mapped[j++];
      std::copy(buf.begin() + lo, buf.begin() + hi, mapped.begin() + lo);
    }
  }

  if (!normalized) return static_cast<double>(inversions);
  const double max_pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(inversions) / max_pairs;
}

Result<double> KendallTauTopL(const RankedList& a, const RankedList& b,
                              const TopLKendallOptions& options) {
  INFLEX_RETURN_NOT_OK(ValidateRankedList(a));
  INFLEX_RETURN_NOT_OK(ValidateRankedList(b));
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("top-ℓ lists must be non-empty");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "top-ℓ Kendall-τ requires lists of equal length");
  }
  if (options.p < 0.0 || options.p > 1.0) {
    return Status::InvalidArgument("penalty p must lie in [0, 1]");
  }
  const size_t ell = a.size();
  constexpr size_t kAbsent = static_cast<size_t>(-1);

  std::unordered_map<Item, size_t> pos_a, pos_b;
  pos_a.reserve(ell * 2);
  pos_b.reserve(ell * 2);
  for (size_t i = 0; i < ell; ++i) pos_a[a[i]] = i;
  for (size_t i = 0; i < ell; ++i) pos_b[b[i]] = i;

  RankedList u = UnionOfLists({a, b});
  auto position = [kAbsent](const std::unordered_map<Item, size_t>& pos,
                            Item v) {
    auto it = pos.find(v);
    return it == pos.end() ? kAbsent : it->second;
  };

  double penalty = 0.0;
  for (size_t x = 0; x < u.size(); ++x) {
    for (size_t y = x + 1; y < u.size(); ++y) {
      const size_t ia = position(pos_a, u[x]);
      const size_t ja = position(pos_a, u[y]);
      const size_t ib = position(pos_b, u[x]);
      const size_t jb = position(pos_b, u[y]);
      const bool x_in_a = ia != kAbsent, y_in_a = ja != kAbsent;
      const bool x_in_b = ib != kAbsent, y_in_b = jb != kAbsent;

      if (x_in_a && y_in_a && x_in_b && y_in_b) {
        // Case 1: both pairs ranked in both lists.
        if ((ia < ja) != (ib < jb)) penalty += 1.0;
      } else if (x_in_a && y_in_a && (x_in_b != y_in_b)) {
        // Case 2, one side is list a: the item present in b is implicitly
        // ahead of the absent one there.
        const bool b_prefers_x = x_in_b;  // present item wins in b
        if ((ia < ja) != b_prefers_x) penalty += 1.0;
      } else if (x_in_b && y_in_b && (x_in_a != y_in_a)) {
        // Case 2, one side is list b.
        const bool a_prefers_x = x_in_a;
        if ((ib < jb) != a_prefers_x) penalty += 1.0;
      } else if ((x_in_a && !x_in_b && y_in_b && !y_in_a) ||
                 (x_in_b && !x_in_a && y_in_a && !y_in_b)) {
        // Case 3: the two items appear in opposite lists only — the lists
        // disagree no matter what.
        penalty += 1.0;
      } else {
        // Case 4: both items confined to the same single list.
        penalty += options.p;
      }
    }
  }

  if (!options.normalized) return penalty;
  const double ell_d = static_cast<double>(ell);
  const double max_penalty = ell_d * ell_d + ell_d * (ell_d - 1.0) * options.p;
  return penalty / max_penalty;
}

}  // namespace rank
}  // namespace inflex
