#ifndef INFLEX_RANK_RANKED_LIST_H_
#define INFLEX_RANK_RANKED_LIST_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace inflex {
namespace rank {

/// Items being ranked. In INFLEX these are node ids of seed users, but the
/// rank-aggregation layer is domain-agnostic.
using Item = uint32_t;

/// A ranked list: position 0 is the most preferred item. Items must be
/// distinct within a list. For INFLEX these are the top-ℓ seed lists
/// produced by CELF++ — the paper stresses that seed "sets" are really
/// ranked lists (footnote 3).
using RankedList = std::vector<Item>;

/// Returns InvalidArgument when `list` contains duplicates.
Status ValidateRankedList(const RankedList& list);

/// Union of the items of all lists, in first-appearance order.
RankedList UnionOfLists(const std::vector<RankedList>& lists);

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_RANKED_LIST_H_
