#include "rank/preference_matrix.h"

#include "util/check.h"

namespace inflex {
namespace rank {

Result<PreferenceMatrix> PreferenceMatrix::Build(
    const std::vector<RankedList>& lists, const std::vector<double>& weights) {
  if (lists.empty()) {
    return Status::InvalidArgument("preference matrix needs at least one list");
  }
  if (!weights.empty() && weights.size() != lists.size()) {
    return Status::InvalidArgument("one weight per list expected");
  }
  for (double w : weights) {
    if (!(w >= 0.0)) {
      return Status::InvalidArgument("weights must be non-negative");
    }
  }
  for (const auto& list : lists) {
    INFLEX_RETURN_NOT_OK(ValidateRankedList(list));
  }

  PreferenceMatrix pm;
  pm.items_ = UnionOfLists(lists);
  const size_t m = pm.items_.size();
  pm.index_.reserve(m * 2);
  for (size_t i = 0; i < m; ++i) pm.index_[pm.items_[i]] = i;
  pm.tally_.assign(m * m, 0.0);

  std::vector<size_t> rank_of(m);
  constexpr size_t kAbsent = static_cast<size_t>(-1);
  for (size_t j = 0; j < lists.size(); ++j) {
    const double w = weights.empty() ? 1.0 : weights[j];
    if (w == 0.0) continue;
    std::fill(rank_of.begin(), rank_of.end(), kAbsent);
    for (size_t r = 0; r < lists[j].size(); ++r) {
      rank_of[pm.index_.at(lists[j][r])] = r;
    }
    for (size_t x = 0; x < m; ++x) {
      const size_t rx = rank_of[x];
      for (size_t y = x + 1; y < m; ++y) {
        const size_t ry = rank_of[y];
        if (rx == kAbsent && ry == kAbsent) continue;  // no vote
        // Present beats absent; otherwise compare positions.
        const bool x_wins =
            (ry == kAbsent) || (rx != kAbsent && rx < ry);
        if (x_wins) {
          pm.tally_[x * m + y] += w;
        } else {
          pm.tally_[y * m + x] += w;
        }
      }
    }
  }
  return pm;
}

double PreferenceMatrix::Preference(Item v, Item v_prime) const {
  const size_t x = IndexOf(v);
  const size_t y = IndexOf(v_prime);
  INFLEX_CHECK_NE(x, npos);
  INFLEX_CHECK_NE(y, npos);
  return tally_[x * items_.size() + y];
}

size_t PreferenceMatrix::IndexOf(Item v) const {
  auto it = index_.find(v);
  return it == index_.end() ? npos : it->second;
}

}  // namespace rank
}  // namespace inflex
