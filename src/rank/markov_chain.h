#ifndef INFLEX_RANK_MARKOV_CHAIN_H_
#define INFLEX_RANK_MARKOV_CHAIN_H_

#include <vector>

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// \brief Options for the MC4 Markov-chain rank aggregation.
struct Mc4Options {
  /// Teleportation (ergodicity) factor, as in PageRank.
  double damping = 0.85;
  /// Power-iteration sweeps / convergence threshold on L1 change.
  int max_iterations = 200;
  double tolerance = 1e-10;
};

/// MC4 rank aggregation (Dwork et al., WWW 2001) — the Markov-chain method
/// the paper cites as the generalization of Copeland aggregation.
///
/// States are the items of U = ∪ lists. From state v, the chain moves to a
/// uniformly chosen item v'; if the (weighted) majority of the lists ranks
/// v' ahead of v the transition is taken, otherwise the chain stays at v.
/// Items are returned ordered by descending stationary probability (ties by
/// item id). Uses the same top-ℓ pairwise semantics as Copeland/Local
/// Kemenization (PreferenceMatrix), and the same weighting convention:
/// empty `weights` means unweighted.
Result<RankedList> Mc4Aggregate(const std::vector<RankedList>& lists,
                                const std::vector<double>& weights,
                                const Mc4Options& options = {});

/// Stationary distribution of the MC4 chain, aligned with
/// UnionOfLists(lists). Exposed for tests and diagnostics.
Result<std::vector<double>> Mc4StationaryDistribution(
    const std::vector<RankedList>& lists, const std::vector<double>& weights,
    const Mc4Options& options = {});

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_MARKOV_CHAIN_H_
