#ifndef INFLEX_RANK_KENDALL_TAU_H_
#define INFLEX_RANK_KENDALL_TAU_H_

#include "rank/ranked_list.h"

namespace inflex {
namespace rank {

/// Kendall-τ distance between two *full* rankings of the same item set
/// (Eq. 6): the number of discordant pairs. When `normalized`, divided by
/// the maximum n(n−1)/2 so the result lies in [0, 1].
/// Fails when the lists are not permutations of one another or contain
/// duplicates.
Result<double> KendallTauFull(const RankedList& a, const RankedList& b,
                              bool normalized = true);

/// \brief Parameters of the top-ℓ Kendall-τ extension (Fagin, Kumar &
/// Sivakumar, SODA 2003; Eq. 7 of the paper).
struct TopLKendallOptions {
  /// Penalty for pairs that appear together in only one list (case 4).
  /// The paper uses the neutral p = 0.5.
  double p = 0.5;
  /// Normalize by the maximum ℓ² + ℓ(ℓ−1)p so the distance lies in [0, 1].
  bool normalized = true;
};

/// Kendall-τ distance between two top-ℓ lists of equal length ℓ, using the
/// four-case penalty of Eq. 7. Distance 0 ⇔ identical lists.
/// Fails on duplicates, empty lists, mismatched lengths, or p outside [0,1].
Result<double> KendallTauTopL(const RankedList& a, const RankedList& b,
                              const TopLKendallOptions& options = {});

}  // namespace rank
}  // namespace inflex

#endif  // INFLEX_RANK_KENDALL_TAU_H_
