#include "rank/kemeny.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "rank/preference_matrix.h"

namespace inflex {
namespace rank {

Result<double> PairwiseKemenyCost(const RankedList& ranking,
                                  const std::vector<RankedList>& lists,
                                  const std::vector<double>& weights) {
  INFLEX_RETURN_NOT_OK(ValidateRankedList(ranking));
  INFLEX_ASSIGN_OR_RETURN(PreferenceMatrix pm,
                          PreferenceMatrix::Build(lists, weights));
  if (ranking.size() != pm.num_items()) {
    return Status::InvalidArgument(
        "ranking must cover exactly the union of the input lists");
  }
  for (Item v : ranking) {
    if (pm.IndexOf(v) == PreferenceMatrix::npos) {
      return Status::InvalidArgument("ranking contains an item outside U");
    }
  }
  double cost = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    for (size_t j = i + 1; j < ranking.size(); ++j) {
      cost += pm.Preference(ranking[j], ranking[i]);
    }
  }
  return cost;
}

Result<RankedList> ExactKemenyAggregate(const std::vector<RankedList>& lists,
                                        const std::vector<double>& weights,
                                        size_t max_union_size) {
  INFLEX_ASSIGN_OR_RETURN(PreferenceMatrix pm,
                          PreferenceMatrix::Build(lists, weights));
  const size_t m = pm.num_items();
  // Hard cap 20: dp tables are 2^m entries (8 MiB of doubles at m = 20).
  if (m > max_union_size || m > 20) {
    return Status::InvalidArgument(
        "union of " + std::to_string(m) +
        " items exceeds the exact-solver limit (" +
        std::to_string(std::min<size_t>(max_union_size, 20)) + ")");
  }
  const RankedList& items = pm.items();
  if (m <= 1) return items;

  // against[x][y] = weight of lists preferring items[y] over items[x]:
  // the cost incurred for every pair placed as (x before y).
  std::vector<double> against(m * m, 0.0);
  for (size_t x = 0; x < m; ++x) {
    for (size_t y = 0; y < m; ++y) {
      if (x != y) against[x * m + y] = pm.Preference(items[y], items[x]);
    }
  }

  // Held-Karp over subsets: dp[S] = minimal cost of ordering the items of S
  // as the ranking's prefix. Transition: append v ∉ S at the next position;
  // v now precedes every item outside S ∪ {v}, incurring Σ against[v][u].
  const size_t full = (size_t{1} << m) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full + 1, kInf);
  std::vector<int8_t> parent(full + 1, -1);
  dp[0] = 0.0;
  for (size_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf) continue;
    for (size_t v = 0; v < m; ++v) {
      if (mask & (size_t{1} << v)) continue;
      const size_t next = mask | (size_t{1} << v);
      double added = 0.0;
      for (size_t u = 0; u < m; ++u) {
        if (u != v && !(next & (size_t{1} << u))) {
          added += against[v * m + u];
        }
      }
      if (dp[mask] + added < dp[next]) {
        dp[next] = dp[mask] + added;
        parent[next] = static_cast<int8_t>(v);
      }
    }
  }

  RankedList result(m);
  size_t mask = full;
  for (size_t pos = m; pos-- > 0;) {
    const auto v = static_cast<size_t>(parent[mask]);
    result[pos] = items[v];
    mask &= ~(size_t{1} << v);
  }
  // Reconstruction fills front-to-back in reverse: parent[mask] is the item
  // placed LAST among mask's prefix — i.e. at position |mask|−1.
  return result;
}

Result<double> FootruleDistance(const RankedList& a, const RankedList& b,
                                bool normalized) {
  INFLEX_RETURN_NOT_OK(ValidateRankedList(a));
  INFLEX_RETURN_NOT_OK(ValidateRankedList(b));
  if (a.size() != b.size()) {
    return Status::InvalidArgument("footrule requires equal-length rankings");
  }
  const size_t m = a.size();
  if (m < 2) return 0.0;
  std::unordered_map<Item, size_t> pos_b;
  pos_b.reserve(m * 2);
  for (size_t i = 0; i < m; ++i) pos_b[b[i]] = i;
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    auto it = pos_b.find(a[i]);
    if (it == pos_b.end()) {
      return Status::InvalidArgument("rankings must cover the same item set");
    }
    total += std::fabs(static_cast<double>(i) -
                       static_cast<double>(it->second));
  }
  if (!normalized) return total;
  const double max_f = std::floor(static_cast<double>(m * m) / 2.0);
  return total / max_f;
}

}  // namespace rank
}  // namespace inflex
