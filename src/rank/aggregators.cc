#include "rank/aggregators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "rank/kendall_tau.h"
#include "rank/local_kemenization.h"
#include "rank/markov_chain.h"
#include "rank/preference_matrix.h"

namespace inflex {
namespace rank {

namespace {

Status ValidateInputs(const std::vector<RankedList>& lists,
                      const std::vector<double>& weights) {
  if (lists.empty()) {
    return Status::InvalidArgument("aggregation needs at least one list");
  }
  if (!weights.empty() && weights.size() != lists.size()) {
    return Status::InvalidArgument("one weight per list expected");
  }
  for (double w : weights) {
    if (!(w >= 0.0)) {
      return Status::InvalidArgument("weights must be non-negative");
    }
  }
  for (const auto& list : lists) {
    INFLEX_RETURN_NOT_OK(ValidateRankedList(list));
    if (list.empty()) {
      return Status::InvalidArgument("cannot aggregate an empty list");
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> WeightedBordaScores(
    const std::vector<RankedList>& lists, const std::vector<double>& weights) {
  INFLEX_RETURN_NOT_OK(ValidateInputs(lists, weights));
  const RankedList u = UnionOfLists(lists);
  std::unordered_map<Item, size_t> index;
  index.reserve(u.size() * 2);
  for (size_t i = 0; i < u.size(); ++i) index[u[i]] = i;

  size_t ell = 0;
  for (const auto& list : lists) ell = std::max(ell, list.size());

  std::vector<double> scores(u.size(), 0.0);
  for (size_t j = 0; j < lists.size(); ++j) {
    const double w = weights.empty() ? 1.0 : weights[j];
    for (size_t r = 0; r < lists[j].size(); ++r) {
      // Rank r (0-based) gets Borda score ℓ − r (i.e. ℓ − τ(v) + 1 with
      // 1-based ranks as in the paper).
      scores[index.at(lists[j][r])] +=
          w * static_cast<double>(ell - r);
    }
  }
  return scores;
}

Result<std::vector<double>> WeightedCopelandScores(
    const std::vector<RankedList>& lists, const std::vector<double>& weights) {
  INFLEX_RETURN_NOT_OK(ValidateInputs(lists, weights));
  INFLEX_ASSIGN_OR_RETURN(PreferenceMatrix pm,
                          PreferenceMatrix::Build(lists, weights));
  const size_t m = pm.num_items();
  std::vector<double> scores(m, 0.0);
  for (size_t x = 0; x < m; ++x) {
    for (size_t y = 0; y < m; ++y) {
      if (x == y) continue;
      if (pm.MajorityPrefers(pm.items()[x], pm.items()[y])) {
        scores[x] += 1.0;
      }
    }
  }
  return scores;
}

Result<RankedList> AggregateRankings(const std::vector<RankedList>& lists,
                                     const std::vector<double>& weights,
                                     size_t k,
                                     const AggregationOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  std::vector<double> effective_weights;
  if (options.use_weights) effective_weights = weights;

  std::vector<double> scores;
  switch (options.method) {
    case AggregationMethod::kBorda: {
      INFLEX_ASSIGN_OR_RETURN(scores,
                              WeightedBordaScores(lists, effective_weights));
      break;
    }
    case AggregationMethod::kCopeland: {
      INFLEX_ASSIGN_OR_RETURN(scores,
                              WeightedCopelandScores(lists, effective_weights));
      break;
    }
    case AggregationMethod::kMarkovChainMc4: {
      INFLEX_ASSIGN_OR_RETURN(
          scores, Mc4StationaryDistribution(lists, effective_weights));
      break;
    }
  }

  const RankedList u = UnionOfLists(lists);
  std::vector<size_t> order(u.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return u[a] < u[b];
  });
  RankedList aggregated(u.size());
  for (size_t i = 0; i < u.size(); ++i) aggregated[i] = u[order[i]];

  if (options.local_kemenization) {
    INFLEX_RETURN_NOT_OK(
        LocalKemenization(lists, effective_weights, &aggregated));
  }
  if (aggregated.size() > k) aggregated.resize(k);
  return aggregated;
}

Result<double> KemenyObjective(const RankedList& candidate,
                               const std::vector<RankedList>& lists,
                               const std::vector<double>& weights,
                               double top_l_penalty) {
  INFLEX_RETURN_NOT_OK(ValidateInputs(lists, weights));
  INFLEX_RETURN_NOT_OK(ValidateRankedList(candidate));
  if (candidate.empty()) {
    return Status::InvalidArgument("candidate list is empty");
  }
  TopLKendallOptions kt;
  kt.p = top_l_penalty;
  double total = 0.0, total_weight = 0.0;
  for (size_t j = 0; j < lists.size(); ++j) {
    const double wj = weights.empty() ? 1.0 : weights[j];
    const size_t ell = std::min(candidate.size(), lists[j].size());
    RankedList c(candidate.begin(), candidate.begin() + ell);
    RankedList l(lists[j].begin(), lists[j].begin() + ell);
    INFLEX_ASSIGN_OR_RETURN(const double d, KendallTauTopL(c, l, kt));
    total += wj * d;
    total_weight += wj;
  }
  if (total_weight == 0.0) {
    return Status::InvalidArgument("all weights are zero");
  }
  return total / total_weight;
}

}  // namespace rank
}  // namespace inflex
