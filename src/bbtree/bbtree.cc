#include "bbtree/bbtree.h"

#include <algorithm>
#include <limits>

#include "cluster/gmeans.h"
#include "cluster/kmeans.h"
#include "simplex/divergence.h"
#include "util/check.h"
#include "util/random.h"

namespace inflex {
namespace bbtree {

namespace {

// Bregman ball covering the given points: center at the arithmetic mean
// (the right-type KL centroid), radius = max divergence of a member from it.
BregmanBall CoveringBall(const std::vector<simplex::TopicVector>& points,
                         const std::vector<uint32_t>& ids) {
  INFLEX_CHECK(!ids.empty());
  const size_t dim = points[ids.front()].size();
  simplex::TopicVector center(dim, 0.0);
  for (uint32_t id : ids) {
    for (size_t d = 0; d < dim; ++d) center[d] += points[id][d];
  }
  for (double& v : center) v /= static_cast<double>(ids.size());
  double radius = 0.0;
  for (uint32_t id : ids) {
    radius = std::max(radius, simplex::KlDivergence(points[id], center));
  }
  return BregmanBall(std::move(center), radius);
}

}  // namespace

class BbTreeBuilder {
 public:
  BbTreeBuilder(std::vector<simplex::TopicVector> points,
                const BbTreeOptions& options)
      : options_(options), rng_(options.seed), input_(std::move(points)) {
    tree_.options_ = options;
    tree_.dim_ = input_.front().size();
  }

  Result<BbTree> Build() {
    std::vector<uint32_t> all_ids(input_.size());
    for (uint32_t i = 0; i < input_.size(); ++i) all_ids[i] = i;
    tree_.nodes_.emplace_back();
    INFLEX_RETURN_NOT_OK(BuildNode(0, std::move(all_ids), 1));
    tree_.FinalizeKernelData(input_);
    return std::move(tree_);
  }

 private:
  Status BuildNode(uint32_t node_id, std::vector<uint32_t> ids, size_t level) {
    tree_.depth_ = std::max(tree_.depth_, level);
    tree_.nodes_[node_id].ball = CoveringBall(input_, ids);
    if (ids.size() <= options_.max_leaf_size) {
      return MakeLeaf(node_id, std::move(ids));
    }

    // Learn the branching factor with G-means over this node's points; the
    // AD test decides how many non-overlapping child balls the population
    // supports (Nielsen et al. 2009). Fall back to a plain 2-way Bregman
    // K-means++ split when G-means sees a single Gaussian cluster.
    std::vector<simplex::TopicVector> members;
    members.reserve(ids.size());
    for (uint32_t id : ids) members.push_back(input_[id]);

    cluster::GMeansOptions gopts;
    gopts.ad_alpha = options_.gmeans_alpha;
    gopts.max_clusters = std::max<size_t>(options_.max_branching, 2);
    gopts.divergence = cluster::BregmanDivergenceKind::kKl;
    gopts.seed = rng_.Next();
    INFLEX_ASSIGN_OR_RETURN(cluster::KMeansResult clustering,
                            cluster::GMeans(members, gopts));
    if (clustering.centroids.size() < 2) {
      cluster::KMeansOptions kopts;
      kopts.num_clusters = 2;
      kopts.divergence = cluster::BregmanDivergenceKind::kKl;
      kopts.seed = rng_.Next();
      INFLEX_ASSIGN_OR_RETURN(clustering,
                              cluster::KMeansPlusPlus(members, kopts));
    }

    // Partition ids by cluster; drop empty clusters.
    std::vector<std::vector<uint32_t>> groups(clustering.centroids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      groups[clustering.assignment[i]].push_back(ids[i]);
    }
    groups.erase(std::remove_if(groups.begin(), groups.end(),
                                [](const auto& g) { return g.empty(); }),
                 groups.end());
    if (groups.size() < 2) {
      // Degenerate split (e.g. duplicated points): stop here.
      return MakeLeaf(node_id, std::move(ids));
    }

    for (auto& group : groups) {
      const uint32_t child_id = static_cast<uint32_t>(tree_.nodes_.size());
      tree_.nodes_.emplace_back();
      tree_.nodes_[node_id].children.push_back(child_id);
      INFLEX_RETURN_NOT_OK(BuildNode(child_id, std::move(group), level + 1));
    }
    return Status::OK();
  }

  Status MakeLeaf(uint32_t node_id, std::vector<uint32_t> ids) {
    tree_.largest_leaf_ = std::max(tree_.largest_leaf_, ids.size());
    tree_.nodes_[node_id].point_ids = std::move(ids);
    ++tree_.num_leaves_;
    return Status::OK();
  }

  BbTreeOptions options_;
  Rng rng_;
  std::vector<simplex::TopicVector> input_;
  BbTree tree_;
};

void BbTree::FinalizeKernelData(
    const std::vector<simplex::TopicVector>& input) {
  const size_t n = input.size();
  // Cache-line padded rows in a 64B-aligned buffer: every row starts on a
  // line boundary, the zero-filled tail is never read by the kernels.
  row_stride_ = util::AlignedRowStride(dim_);
  point_data_.assign(n * row_stride_, 0.0);
  point_negent_.assign(n, 0.0);
  row_of_id_.assign(n, 0);
  id_of_row_.assign(n, 0);
  // Leaf-contiguous row layout: walking a leaf's points sweeps sequential
  // rows of the flat buffer.
  uint32_t next_row = 0;
  for (const Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    for (uint32_t id : node.point_ids) {
      const uint32_t row = next_row++;
      std::copy(input[id].begin(), input[id].end(),
                point_data_.begin() + static_cast<size_t>(row) * row_stride_);
      point_negent_[row] = simplex::NegativeEntropy(input[id].data(), dim_);
      row_of_id_[id] = row;
      id_of_row_[row] = id;
    }
  }
  INFLEX_CHECK_EQ(static_cast<size_t>(next_row), n);
  // Child-center matrices for the batched descent evaluation.
  max_children_ = 0;
  for (Node& node : nodes_) {
    if (node.is_leaf()) continue;
    const size_t m = node.children.size();
    max_children_ = std::max(max_children_, m);
    node.child_centers.assign(m * row_stride_, 0.0);
    node.child_center_negent.resize(m);
    for (size_t c = 0; c < m; ++c) {
      const BregmanBall& ball = nodes_[node.children[c]].ball;
      std::copy(ball.center().begin(), ball.center().end(),
                node.child_centers.begin() + c * row_stride_);
      node.child_center_negent[c] = ball.center_neg_entropy();
    }
  }
  // The built shape is the degradation baseline: a degenerate split can
  // legitimately leave a leaf beyond max_leaf_size, and that must read as
  // degradation 0 until online churn makes it worse.
  built_largest_leaf_ = largest_leaf_;
}

Result<BbTree> BbTree::Build(std::vector<simplex::TopicVector> points,
                             const BbTreeOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("bb-tree requires at least one point");
  }
  const size_t dim = points.front().size();
  if (dim < 2) {
    return Status::InvalidArgument("bb-tree points must have dimension >= 2");
  }
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("bb-tree points disagree on dimension");
    }
  }
  if (options.max_leaf_size == 0) {
    return Status::InvalidArgument("max_leaf_size must be positive");
  }
  BbTreeBuilder builder(std::move(points), options);
  return builder.Build();
}

simplex::TopicVector BbTree::point(uint32_t id) const {
  const auto view = point_span(id);
  return simplex::TopicVector(view.begin(), view.end());
}

Result<uint32_t> BbTree::Insert(simplex::TopicVector point) {
  INFLEX_CHECK(!nodes_.empty());
  if (point.size() != dim_) {
    return Status::InvalidArgument("inserted point dimension mismatch");
  }

  // One context for the whole descent: log(max(point, eps)) and −H(point)
  // serve both directions of the kernel (ball checks evaluate
  // D_KL(point ‖ center) against the ball's cached log-center; child
  // selection evaluates D_KL(center ‖ point) over the node's child matrix).
  simplex::KlQueryContext kq;
  kq.Reset(point);
  std::vector<double> child_divs;

  // Descend by the same closest-center rule the searches use, enlarging
  // every ball on the path so it keeps covering the new point (the ball is
  // {x : D_KL(x ‖ center) ≤ R}, so the required radius is the point's
  // divergence from the center).
  uint32_t current = 0;
  while (true) {
    Node& node = nodes_[current];
    const double to_center =
        kq.KlOfQueryAgainst(node.ball.log_center().data());
    if (to_center > node.ball.radius()) {
      node.ball.EnlargeRadius(to_center);
    }
    if (node.is_leaf()) break;
    const size_t m = node.children.size();
    child_divs.resize(m);
    simplex::KlBatch(node.child_centers.data(),
                     node.child_center_negent.data(), m, dim_, row_stride_,
                     kq.log_query(), child_divs.data());
    size_t best = 0;
    for (size_t c = 1; c < m; ++c) {
      if (child_divs[c] < child_divs[best]) best = c;
    }
    current = node.children[best];
  }

  const auto id = static_cast<uint32_t>(num_points());
  // Append one stride-padded row (the resize zero-fills the padding tail).
  point_data_.resize(point_data_.size() + row_stride_, 0.0);
  std::copy(point.begin(), point.end(), point_data_.end() - row_stride_);
  point_negent_.push_back(simplex::NegativeEntropy(point.data(), dim_));
  row_of_id_.push_back(id);  // appended rows coincide with appended ids
  id_of_row_.push_back(id);
  nodes_[current].point_ids.push_back(id);
  largest_leaf_ = std::max(largest_leaf_, nodes_[current].point_ids.size());
  ++num_inserted_;
  return id;
}

Status BbTree::RemovePoints(std::span<const uint32_t> ids) {
  INFLEX_CHECK(!nodes_.empty());
  if (ids.empty()) return Status::OK();
  const size_t n = num_points();
  std::vector<uint8_t> removed(n, 0);
  size_t r = 0;
  for (uint32_t id : ids) {
    if (id >= n) {
      return Status::InvalidArgument("removed point id out of range");
    }
    if (!removed[id]) {
      removed[id] = 1;
      ++r;
    }
  }
  if (r == n) {
    return Status::InvalidArgument("cannot remove every point of a bb-tree");
  }

  // Dense renumbering of the survivors, preserving id order.
  constexpr uint32_t kGone = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> new_id(n, kGone);
  uint32_t next_id = 0;
  for (uint32_t id = 0; id < n; ++id) {
    if (!removed[id]) new_id[id] = next_id++;
  }

  // Physically compact the SoA rows in row order: surviving leaf runs stay
  // contiguous, so leaf scans remain sequential sweeps.
  const size_t survivors = n - r;
  util::AlignedVector<double> data(survivors * row_stride_);
  std::vector<double> negent(survivors);
  std::vector<uint32_t> row_of(survivors);
  std::vector<uint32_t> id_of(survivors);
  uint32_t next_row = 0;
  for (uint32_t row = 0; row < n; ++row) {
    const uint32_t old_id = id_of_row_[row];
    if (removed[old_id]) continue;
    // Full-stride copy: the zero padding travels with the row.
    std::copy_n(point_data_.data() + static_cast<size_t>(row) * row_stride_,
                row_stride_,
                data.data() + static_cast<size_t>(next_row) * row_stride_);
    negent[next_row] = point_negent_[row];
    id_of[next_row] = new_id[old_id];
    row_of[new_id[old_id]] = next_row;
    ++next_row;
  }
  INFLEX_CHECK_EQ(static_cast<size_t>(next_row), survivors);
  point_data_ = std::move(data);
  point_negent_ = std::move(negent);
  row_of_id_ = std::move(row_of);
  id_of_row_ = std::move(id_of);

  // Drop the ids from their leaves and renumber the survivors in place.
  // Leaves may become empty — searches tolerate that (an empty scan) until
  // the next Compact rebuilds the partition. Balls keep their radii: a ball
  // that is too large is conservative, never unsound.
  largest_leaf_ = 0;
  for (Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    size_t w = 0;
    for (uint32_t pid : node.point_ids) {
      if (!removed[pid]) node.point_ids[w++] = new_id[pid];
    }
    node.point_ids.resize(w);
    largest_leaf_ = std::max(largest_leaf_, w);
  }
  num_removed_ += r;
  return Status::OK();
}

double BbTree::degradation() const {
  if (num_points() == 0) return 0.0;
  // Churn fraction: points that arrived or left since the last build,
  // relative to the built+inserted population the tree has seen.
  const double churn =
      static_cast<double>(num_inserted_ + num_removed_) /
      static_cast<double>(num_points() + num_removed_);
  // Overflow of the worst leaf beyond its built-time baseline (so a freshly
  // built tree — even one with a degenerate oversized leaf — reads 0).
  const size_t cap =
      std::max({options_.max_leaf_size, built_largest_leaf_, size_t{1}});
  const double leaf_overflow =
      largest_leaf_ > cap
          ? static_cast<double>(largest_leaf_ - cap) / static_cast<double>(cap)
          : 0.0;
  return churn + leaf_overflow;
}

}  // namespace bbtree
}  // namespace inflex
