#include "bbtree/bregman_ball.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simplex/divergence.h"
#include "util/check.h"

namespace inflex {
namespace bbtree {

namespace {

constexpr double kGeodesicEps = 1e-12;
constexpr int kMaxBisectionIters = 60;
constexpr double kLambdaTolerance = 1e-10;

// Point on the dual geodesic between q (λ=0) and μ (λ=1): the normalized
// componentwise geometric mixture x_λ ∝ q^{1−λ} μ^λ.
void GeodesicPoint(const simplex::TopicVector& q,
                   const simplex::TopicVector& mu, double lambda,
                   simplex::TopicVector* out) {
  const size_t dim = q.size();
  out->resize(dim);
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double lq = std::log(std::max(q[d], kGeodesicEps));
    const double lm = std::log(std::max(mu[d], kGeodesicEps));
    (*out)[d] = std::exp((1.0 - lambda) * lq + lambda * lm);
    sum += (*out)[d];
  }
  for (double& v : *out) v /= sum;
}

}  // namespace

bool BregmanBall::Contains(const simplex::TopicVector& x, double slack) const {
  return simplex::KlDivergence(x, center_) <= radius_ + slack;
}

double BregmanBall::MinDivergenceFrom(const simplex::TopicVector& q,
                                      size_t* kl_evaluations) const {
  INFLEX_CHECK_EQ(q.size(), center_.size());
  size_t evals = 0;
  const double div_q_center = simplex::KlDivergence(q, center_);
  ++evals;
  if (div_q_center <= radius_) {
    // q itself is inside the ball: the minimum is 0.
    if (kl_evaluations != nullptr) *kl_evaluations += evals;
    return 0.0;
  }

  // Bisect λ for the boundary crossing: D_KL(x_λ ‖ μ) decreases from
  // D_KL(q ‖ μ) > R at λ=0 to 0 at λ=1. Keep x_{λ_out} outside and
  // x_{λ_in} inside the ball; the projection lies between them and
  // D_KL(x_λ ‖ q) is increasing in λ, so x_{λ_out} gives a lower bound.
  double lambda_out = 0.0, lambda_in = 1.0;
  simplex::TopicVector x;
  for (int it = 0;
       it < kMaxBisectionIters && lambda_in - lambda_out > kLambdaTolerance;
       ++it) {
    const double mid = 0.5 * (lambda_out + lambda_in);
    GeodesicPoint(q, center_, mid, &x);
    const double d_to_center = simplex::KlDivergence(x, center_);
    ++evals;
    if (d_to_center > radius_) {
      lambda_out = mid;
    } else {
      lambda_in = mid;
    }
  }
  GeodesicPoint(q, center_, lambda_out, &x);
  const double bound = simplex::KlDivergence(x, q);
  ++evals;
  if (kl_evaluations != nullptr) *kl_evaluations += evals;
  return bound;
}

bool BregmanBall::CanPrune(const simplex::TopicVector& q, double delta,
                           size_t* kl_evaluations) const {
  INFLEX_CHECK_EQ(q.size(), center_.size());
  if (delta == std::numeric_limits<double>::infinity()) return false;
  size_t evals = 0;
  const double div_q_center = simplex::KlDivergence(q, center_);
  ++evals;
  if (div_q_center <= radius_) {
    if (kl_evaluations != nullptr) *kl_evaluations += evals;
    return false;  // min is 0 < δ for any positive δ
  }

  double lambda_out = 0.0, lambda_in = 1.0;
  simplex::TopicVector x;
  bool prune = false;
  for (int it = 0; it < kMaxBisectionIters; ++it) {
    const double mid = 0.5 * (lambda_out + lambda_in);
    GeodesicPoint(q, center_, mid, &x);
    const double d_to_center = simplex::KlDivergence(x, center_);
    const double d_to_query = simplex::KlDivergence(x, q);
    evals += 2;
    if (d_to_center > radius_) {
      lambda_out = mid;
      // x is infeasible but closer to q than the projection: lower bound.
      if (d_to_query >= delta) {
        prune = true;
        break;
      }
    } else {
      lambda_in = mid;
      // x is feasible: upper bound on the minimum.
      if (d_to_query < delta) {
        prune = false;
        break;
      }
    }
    if (lambda_in - lambda_out <= kLambdaTolerance) {
      prune = d_to_query >= delta;
      break;
    }
  }
  if (kl_evaluations != nullptr) *kl_evaluations += evals;
  return prune;
}

}  // namespace bbtree
}  // namespace inflex
