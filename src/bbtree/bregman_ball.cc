#include "bbtree/bregman_ball.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simplex/divergence.h"
#include "util/check.h"
#include "util/timer.h"

namespace inflex {
namespace bbtree {

namespace {

constexpr int kMaxBisectionIters = 60;
constexpr double kLambdaTolerance = 1e-10;

// Fills scratch->x with the normalized geodesic point between q (λ=0) and μ
// (λ=1) — the componentwise geometric mixture x_λ ∝ q̂^{1−λ} μ̂^λ — and
// returns Σ_z x_z·log x_z (its negative entropy). The entropy falls out of
// the log-mixture coordinates u_z = (1−λ)·log q̂_z + λ·log μ̂_z without
// further log calls: log x_z = u_z − log S, where S normalizes exp(u).
double GeodesicPoint(const double* log_q, const double* log_mu, size_t n,
                     double lambda, BisectionScratch* scratch) {
  scratch->x.resize(n);
  scratch->u.resize(n);
  double sum = 0.0;
  for (size_t z = 0; z < n; ++z) {
    const double u = (1.0 - lambda) * log_q[z] + lambda * log_mu[z];
    scratch->u[z] = u;
    const double e = std::exp(u);
    scratch->x[z] = e;
    sum += e;
  }
  const double inv = 1.0 / sum;
  for (size_t z = 0; z < n; ++z) scratch->x[z] *= inv;
  return simplex::DotProduct(scratch->x.data(), scratch->u.data(), n) -
         std::log(sum);
}

}  // namespace

BregmanBall::BregmanBall(simplex::TopicVector center, double radius)
    : center_(std::move(center)), radius_(radius) {
  log_center_.resize(center_.size());
  simplex::ClampedLog(center_.data(), center_.size(), simplex::kKlSmoothingEps,
                      log_center_.data());
  neg_entropy_ = simplex::NegativeEntropy(center_.data(), center_.size());
}

void BregmanBall::EnlargeRadius(double radius) {
  radius_ = std::max(radius_, radius);
}

bool BregmanBall::Contains(const simplex::TopicVector& x, double slack) const {
  return simplex::KlDivergence(x, center_) <= radius_ + slack;
}

// The unscreened entry points evaluate the screen D_KL(q ‖ μ) themselves and
// hand off to the *Screened refinements below; a batched search precomputes
// the same value for a whole frontier in one kernel sweep instead. Either
// way the refinement sees a bit-identical div_q_center (same dispatched dot
// product over the same operands), so decisions and bounds cannot diverge.

double BregmanBall::MinDivergenceFrom(const simplex::KlQueryContext& query,
                                      BisectionScratch* scratch,
                                      SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.dim(), center_.size());
  Timer timer;
  const double div_q_center = query.KlOfQueryAgainst(log_center_.data());
  if (stats != nullptr) {
    stats->kl_evaluations += 1;
    stats->kl_ns += static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  }
  return MinDivergenceScreened(query, div_q_center, scratch, stats);
}

double BregmanBall::MinDivergenceScreened(const simplex::KlQueryContext& query,
                                          double div_q_center,
                                          BisectionScratch* scratch,
                                          SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.dim(), center_.size());
  Timer timer;
  size_t evals = 0;
  const double* log_q = query.log_query();
  double bound = 0.0;
  if (div_q_center > radius_) {
    // Bisect λ for the boundary crossing: D_KL(x_λ ‖ μ) decreases from
    // D_KL(q ‖ μ) > R at λ=0 to 0 at λ=1. Keep x_{λ_out} outside and
    // x_{λ_in} inside the ball; the projection lies between them and
    // D_KL(x_λ ‖ q) is increasing in λ, so x_{λ_out} gives a lower bound.
    const size_t n = center_.size();
    double lambda_out = 0.0, lambda_in = 1.0;
    for (int it = 0;
         it < kMaxBisectionIters && lambda_in - lambda_out > kLambdaTolerance;
         ++it) {
      const double mid = 0.5 * (lambda_out + lambda_in);
      const double neg_entropy_x =
          GeodesicPoint(log_q, log_center_.data(), n, mid, scratch);
      const double d_to_center = std::max(
          neg_entropy_x -
              simplex::DotProduct(scratch->x.data(), log_center_.data(), n),
          0.0);
      ++evals;
      if (d_to_center > radius_) {
        lambda_out = mid;
      } else {
        lambda_in = mid;
      }
    }
    const double neg_entropy_x =
        GeodesicPoint(log_q, log_center_.data(), n, lambda_out, scratch);
    bound = std::max(
        neg_entropy_x - simplex::DotProduct(scratch->x.data(), log_q, n), 0.0);
    ++evals;
  }
  if (stats != nullptr) {
    stats->kl_evaluations += evals;
    stats->kl_ns += static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  }
  return bound;
}

bool BregmanBall::CanPrune(const simplex::KlQueryContext& query, double delta,
                           BisectionScratch* scratch,
                           SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.dim(), center_.size());
  if (delta == std::numeric_limits<double>::infinity()) return false;
  Timer timer;
  const double div_q_center = query.KlOfQueryAgainst(log_center_.data());
  if (stats != nullptr) {
    stats->kl_evaluations += 1;
    stats->kl_ns += static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  }
  return CanPruneScreened(query, div_q_center, delta, scratch, stats);
}

bool BregmanBall::CanPruneScreened(const simplex::KlQueryContext& query,
                                   double div_q_center, double delta,
                                   BisectionScratch* scratch,
                                   SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.dim(), center_.size());
  if (delta == std::numeric_limits<double>::infinity()) return false;
  Timer timer;
  size_t evals = 0;
  const double* log_q = query.log_query();
  bool prune = false;
  if (div_q_center > radius_) {
    const size_t n = center_.size();
    double lambda_out = 0.0, lambda_in = 1.0;
    for (int it = 0; it < kMaxBisectionIters; ++it) {
      const double mid = 0.5 * (lambda_out + lambda_in);
      const double neg_entropy_x =
          GeodesicPoint(log_q, log_center_.data(), n, mid, scratch);
      const double d_to_center = std::max(
          neg_entropy_x -
              simplex::DotProduct(scratch->x.data(), log_center_.data(), n),
          0.0);
      const double d_to_query = std::max(
          neg_entropy_x - simplex::DotProduct(scratch->x.data(), log_q, n),
          0.0);
      evals += 2;
      if (d_to_center > radius_) {
        lambda_out = mid;
        // x is infeasible but closer to q than the projection: lower bound.
        if (d_to_query >= delta) {
          prune = true;
          break;
        }
      } else {
        lambda_in = mid;
        // x is feasible: upper bound on the minimum.
        if (d_to_query < delta) {
          prune = false;
          break;
        }
      }
      if (lambda_in - lambda_out <= kLambdaTolerance) {
        prune = d_to_query >= delta;
        break;
      }
    }
  }
  if (stats != nullptr) {
    stats->kl_evaluations += evals;
    stats->kl_ns += static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
  }
  return prune;
}

double BregmanBall::MinDivergenceFrom(const simplex::TopicVector& q,
                                      size_t* kl_evaluations) const {
  simplex::KlQueryContext ctx;
  ctx.Reset(q);
  BisectionScratch scratch;
  SearchStats stats;
  const double bound = MinDivergenceFrom(ctx, &scratch, &stats);
  if (kl_evaluations != nullptr) *kl_evaluations += stats.kl_evaluations;
  return bound;
}

bool BregmanBall::CanPrune(const simplex::TopicVector& q, double delta,
                           size_t* kl_evaluations) const {
  simplex::KlQueryContext ctx;
  ctx.Reset(q);
  BisectionScratch scratch;
  SearchStats stats;
  const bool prune = CanPrune(ctx, delta, &scratch, &stats);
  if (kl_evaluations != nullptr) *kl_evaluations += stats.kl_evaluations;
  return prune;
}

}  // namespace bbtree
}  // namespace inflex
