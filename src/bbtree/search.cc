#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "bbtree/bbtree.h"
#include "simplex/divergence.h"
#include "stats/anderson_darling.h"
#include "util/check.h"

namespace inflex {
namespace bbtree {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap entries keyed by divergence / lower bound.
using KeyedNode = std::pair<double, uint32_t>;
struct KeyedNodeGreater {
  bool operator()(const KeyedNode& a, const KeyedNode& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second > b.second;
  }
};
using MinHeap =
    std::priority_queue<KeyedNode, std::vector<KeyedNode>, KeyedNodeGreater>;

// The `similar_enough` test of Algorithm 1: project the leaf population and
// the query onto the direction from the leaf's mean to the query and
// Anderson-Darling-test the joint sample for normality. Accepting the null
// ("the query blends into the leaf population") stops the search.
bool SimilarEnough(const std::vector<simplex::TopicVector>& points,
                   const std::vector<uint32_t>& leaf_ids,
                   const simplex::TopicVector& query, double ad_alpha) {
  if (leaf_ids.size() + 1 < 5) return false;  // too small to test: continue
  const size_t dim = query.size();
  simplex::TopicVector mean(dim, 0.0);
  for (uint32_t id : leaf_ids) {
    for (size_t d = 0; d < dim; ++d) mean[d] += points[id][d];
  }
  for (double& v : mean) v /= static_cast<double>(leaf_ids.size());

  std::vector<double> direction(dim);
  double norm_sq = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    direction[d] = query[d] - mean[d];
    norm_sq += direction[d] * direction[d];
  }
  if (norm_sq <= 1e-24) return true;  // query coincides with the population
  const double inv_norm = 1.0 / std::sqrt(norm_sq);

  std::vector<double> sample;
  sample.reserve(leaf_ids.size() + 1);
  auto project = [&](const simplex::TopicVector& x) {
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += x[d] * direction[d];
    return dot * inv_norm;
  };
  for (uint32_t id : leaf_ids) sample.push_back(project(points[id]));
  sample.push_back(project(query));

  auto ad = stats::AndersonDarlingNormality(sample);
  if (!ad.ok()) return true;  // degenerate (zero variance): trivially similar
  return ad.ValueOrDie().IsNormal(ad_alpha);
}

}  // namespace

uint32_t BbTree::DescendToLeaf(
    uint32_t node_id, const simplex::TopicVector& query, SearchStats* stats,
    std::vector<std::pair<double, uint32_t>>* siblings_out) const {
  uint32_t current = node_id;
  while (!nodes_[current].is_leaf()) {
    ++stats->nodes_visited;
    double best_div = kInf;
    uint32_t best_child = nodes_[current].children.front();
    std::vector<std::pair<double, uint32_t>> evaluated;
    evaluated.reserve(nodes_[current].children.size());
    for (uint32_t child : nodes_[current].children) {
      const double d =
          simplex::KlDivergence(nodes_[child].ball.center(), query);
      ++stats->kl_evaluations;
      evaluated.emplace_back(d, child);
      if (d < best_div) {
        best_div = d;
        best_child = child;
      }
    }
    for (const auto& [d, child] : evaluated) {
      if (child != best_child) siblings_out->emplace_back(d, child);
    }
    current = best_child;
  }
  ++stats->nodes_visited;
  return current;
}

InflexSearchResult BbTree::InflexSearch(
    const simplex::TopicVector& query,
    const InflexSearchOptions& options) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  InflexSearchResult result;
  SearchStats& stats = result.stats;

  MinHeap pending;
  pending.push({0.0, 0});  // root
  std::vector<std::pair<double, uint32_t>> siblings;
  double delta = kInf;  // max divergence in the current solution set

  while (!pending.empty() && stats.leaves_visited < options.max_leaves) {
    const auto [key, node_id] = pending.top();
    pending.pop();
    (void)key;
    if (options.use_pruning && !result.neighbors.empty() &&
        nodes_[node_id].ball.CanPrune(query, delta, &stats.kl_evaluations)) {
      ++stats.subtrees_pruned;
      continue;
    }
    siblings.clear();
    const uint32_t leaf = DescendToLeaf(node_id, query, &stats, &siblings);
    for (const auto& s : siblings) pending.push(s);

    ++stats.leaves_visited;
    const auto& leaf_ids = nodes_[leaf].point_ids;
    for (uint32_t pid : leaf_ids) {
      const double d = simplex::KlDivergence(points_[pid], query);
      ++stats.kl_evaluations;
      if (d <= options.epsilon_exact) {
        // ε-exact match: the index already contains (essentially) this very
        // item; return its seed list alone.
        result.neighbors.assign(1, Neighbor{pid, d});
        result.epsilon_exact = true;
        return result;
      }
      result.neighbors.push_back(Neighbor{pid, d});
      delta = std::max(delta == kInf ? d : delta, d);
    }
    if (options.use_ad_early_stop &&
        SimilarEnough(points_, leaf_ids, query, options.ad_alpha)) {
      break;
    }
  }
  std::sort(result.neighbors.begin(), result.neighbors.end());
  return result;
}

std::vector<Neighbor> BbTree::LeafBoundedKnn(const simplex::TopicVector& query,
                                             size_t k, size_t max_leaves,
                                             SearchStats* stats) const {
  InflexSearchOptions options;
  options.epsilon_exact = -1.0;      // never short-circuit
  options.use_ad_early_stop = false;  // leaf budget is the only stop
  options.max_leaves = max_leaves;
  InflexSearchResult r = InflexSearch(query, options);
  if (stats != nullptr) *stats = r.stats;
  if (r.neighbors.size() > k) r.neighbors.resize(k);
  return std::move(r.neighbors);
}

std::vector<Neighbor> BbTree::ExactKnn(const simplex::TopicVector& query,
                                       size_t k,
                                       SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  INFLEX_CHECK_GT(k, 0u);
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  // Best-first branch-and-bound on the Eq. 5 lower bound; a min-heap keyed
  // by the bound lets us stop as soon as the bound exceeds the k-th best.
  MinHeap pending;
  pending.push({0.0, 0});
  std::priority_queue<Neighbor> best;  // max-heap: worst of the best on top

  while (!pending.empty()) {
    const auto [lower_bound, node_id] = pending.top();
    pending.pop();
    const double delta = best.size() == k ? best.top().divergence : kInf;
    if (lower_bound >= delta) {
      ++st.subtrees_pruned;
      break;  // min-heap: every remaining bound is at least as large
    }
    const Node& node = nodes_[node_id];
    ++st.nodes_visited;
    if (node.is_leaf()) {
      ++st.leaves_visited;
      for (uint32_t pid : node.point_ids) {
        const double d = simplex::KlDivergence(points_[pid], query);
        ++st.kl_evaluations;
        if (best.size() < k) {
          best.push(Neighbor{pid, d});
        } else if (d < best.top().divergence) {
          best.pop();
          best.push(Neighbor{pid, d});
        }
      }
    } else {
      for (uint32_t child : node.children) {
        const double lb =
            nodes_[child].ball.MinDivergenceFrom(query, &st.kl_evaluations);
        const double cur_delta = best.size() == k ? best.top().divergence : kInf;
        if (lb < cur_delta) {
          pending.push({lb, child});
        } else {
          ++st.subtrees_pruned;
        }
      }
    }
  }

  std::vector<Neighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<Neighbor> BbTree::LinearScanKnn(const simplex::TopicVector& query,
                                            size_t k,
                                            SearchStats* stats) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  std::vector<Neighbor> all(points_.size());
  for (uint32_t i = 0; i < points_.size(); ++i) {
    all[i] = Neighbor{i, simplex::KlDivergence(points_[i], query)};
  }
  if (stats != nullptr) stats->kl_evaluations += points_.size();
  const size_t kk = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end());
  all.resize(kk);
  return all;
}

}  // namespace bbtree
}  // namespace inflex
