#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "bbtree/bbtree.h"
#include "simplex/kl_kernel.h"
#include "stats/anderson_darling.h"
#include "util/check.h"
#include "util/timer.h"

namespace inflex {
namespace bbtree {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Min-heap entries keyed by divergence / lower bound. The carried screen
// value is derived data and deliberately NOT part of the ordering: batched
// and unbatched searches pop nodes in the same order.
struct QueuedSubtreeGreater {
  bool operator()(const QueuedSubtree& a, const QueuedSubtree& b) const {
    if (a.key != b.key) return a.key > b.key;
    return a.node > b.node;
  }
};
using MinHeap = std::priority_queue<QueuedSubtree, std::vector<QueuedSubtree>,
                                    QueuedSubtreeGreater>;

// No screen was precomputed for this entry (screens are true divergences,
// hence never negative); the pruning test evaluates one on demand.
constexpr double kNoScreen = -1.0;

// Resolves the caller's context: a nullptr falls back to a thread_local
// instance, so steady-state search is allocation-free either way. Every
// search entry point follows the resolve with BbTree::BindScratch, which
// re-validates the (possibly tree-hopping) context against the tree about
// to be searched and bounds its retained capacity.
SearchContext& Scratch(SearchContext* ctx) {
  if (ctx != nullptr) return *ctx;
  thread_local SearchContext tls;
  return tls;
}

// Releases a scratch vector whose retained capacity is far beyond what the
// bound tree can demand. The 4× hysteresis over a small floor means a
// context reused against one tree never reallocates, while a thread_local
// context that once served a worst-case tree stops pinning that high-water
// mark the first time it touches a smaller one.
template <typename Vec>
void BoundCapacity(Vec& v, size_t need) {
  constexpr size_t kFloor = 64;
  if (v.capacity() > std::max(4 * need, kFloor)) {
    Vec().swap(v);
    v.reserve(need);
  }
}

uint64_t ElapsedNs(const Timer& t) {
  return static_cast<uint64_t>(t.ElapsedSeconds() * 1e9);
}

}  // namespace

void SearchContext::BindTo(size_t dim, size_t max_leaf, size_t max_children) {
  // Sizes are additionally re-validated at every use site (resize/assign per
  // node or leaf), so binding is purely about bounding retention: correctness
  // against a different tree never depends on this call.
  kl_.ShrinkTo(dim);
  BoundCapacity(bisect_.x, dim);
  BoundCapacity(bisect_.u, dim);
  BoundCapacity(child_divs_, max_children);
  BoundCapacity(leaf_divs_, max_leaf);
  BoundCapacity(mean_, dim);
  BoundCapacity(direction_, dim);
  BoundCapacity(sample_, max_leaf + 1);
  // One bypassed sibling set per level is the steady state; depth ×
  // branching is a loose worst case the queue rarely approaches.
  const size_t queue_bound = std::max<size_t>(max_children * 8, 16);
  BoundCapacity(siblings_, queue_bound);
  // The batched-screen gather scratch is bounded by the same frontier size
  // (ScreenBalls runs over one descent's bypassed siblings or one node's
  // children, whichever the search batches).
  BoundCapacity(screen_ids_, queue_bound);
  BoundCapacity(screen_divs_, queue_bound);
  BoundCapacity(screen_rows_, queue_bound * util::AlignedRowStride(dim));
}

// The `similar_enough` test of Algorithm 1: project the leaf population and
// the query onto the direction from the leaf's mean to the query and
// Anderson-Darling-test the joint sample for normality. Accepting the null
// ("the query blends into the leaf population") stops the search.
bool BbTree::SimilarEnough(const std::vector<uint32_t>& leaf_ids,
                           SearchContext& ctx, double ad_alpha) const {
  if (leaf_ids.size() + 1 < 5) return false;  // too small to test: continue
  const size_t dim = dim_;
  const double* query = ctx.kl_.query();
  ctx.mean_.assign(dim, 0.0);
  for (uint32_t id : leaf_ids) {
    const double* p = row_ptr(row_of_id_[id]);
    for (size_t d = 0; d < dim; ++d) ctx.mean_[d] += p[d];
  }
  for (double& v : ctx.mean_) v /= static_cast<double>(leaf_ids.size());

  ctx.direction_.resize(dim);
  double norm_sq = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    ctx.direction_[d] = query[d] - ctx.mean_[d];
    norm_sq += ctx.direction_[d] * ctx.direction_[d];
  }
  if (norm_sq <= 1e-24) return true;  // query coincides with the population
  const double inv_norm = 1.0 / std::sqrt(norm_sq);

  ctx.sample_.clear();
  for (uint32_t id : leaf_ids) {
    ctx.sample_.push_back(
        simplex::DotProduct(row_ptr(row_of_id_[id]), ctx.direction_.data(),
                            dim) *
        inv_norm);
  }
  ctx.sample_.push_back(
      simplex::DotProduct(query, ctx.direction_.data(), dim) * inv_norm);

  auto ad = stats::AndersonDarlingNormality(ctx.sample_);
  if (!ad.ok()) return true;  // degenerate (zero variance): trivially similar
  return ad.ValueOrDie().IsNormal(ad_alpha);
}

uint32_t BbTree::DescendToLeaf(uint32_t node_id, SearchContext& ctx,
                               SearchStats* stats) const {
  uint32_t current = node_id;
  while (!nodes_[current].is_leaf()) {
    ++stats->nodes_visited;
    const Node& node = nodes_[current];
    const size_t m = node.children.size();
    ctx.child_divs_.resize(m);
    Timer timer;
    simplex::KlBatch(node.child_centers.data(),
                     node.child_center_negent.data(), m, dim_, row_stride_,
                     ctx.kl_.log_query(), ctx.child_divs_.data());
    stats->kl_ns += ElapsedNs(timer);
    stats->kl_evaluations += m;
    size_t best = 0;
    for (size_t c = 1; c < m; ++c) {
      if (ctx.child_divs_[c] < ctx.child_divs_[best]) best = c;
    }
    for (size_t c = 0; c < m; ++c) {
      if (c != best) {
        ctx.siblings_.push_back(
            {ctx.child_divs_[c], node.children[c], kNoScreen});
      }
    }
    current = node.children[best];
  }
  ++stats->nodes_visited;
  return current;
}

void BbTree::ScreenBalls(const uint32_t* node_ids, size_t m,
                         SearchContext& ctx, SearchStats* stats) const {
  // Gather the balls' cached log-centers into stride-padded aligned rows.
  // Stale padding from a previous (larger) batch is harmless: the kernel
  // reads exactly dim_ values per row.
  const size_t stride = row_stride_;
  ctx.screen_rows_.resize(m * stride);
  for (size_t i = 0; i < m; ++i) {
    const std::vector<double>& lc = nodes_[node_ids[i]].ball.log_center();
    std::copy(lc.begin(), lc.end(), ctx.screen_rows_.begin() + i * stride);
  }
  ctx.screen_divs_.resize(m);
  Timer timer;
  simplex::KlBatchTargets(ctx.kl_.query(), ctx.kl_.query_neg_entropy(),
                          ctx.screen_rows_.data(), m, dim_, stride,
                          ctx.screen_divs_.data());
  stats->kl_ns += ElapsedNs(timer);
  stats->kl_evaluations += m;
}

void BbTree::ScanLeaf(const Node& leaf, SearchContext& ctx,
                      SearchStats* stats) const {
  const size_t m = leaf.point_ids.size();
  ctx.leaf_divs_.resize(m);
  Timer timer;
  for (size_t i = 0; i < m; ++i) {
    const uint32_t row = row_of_id_[leaf.point_ids[i]];
    ctx.leaf_divs_[i] = ctx.kl_.Kl(row_ptr(row), point_negent_[row]);
  }
  stats->kl_ns += ElapsedNs(timer);
  stats->kl_evaluations += m;
}

InflexSearchResult BbTree::InflexSearch(const simplex::TopicVector& query,
                                        const InflexSearchOptions& options,
                                        SearchContext* ctx_in) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  SearchContext& ctx = Scratch(ctx_in);
  BindScratch(ctx);
  ctx.kl_.Reset(query);
  InflexSearchResult result;
  SearchStats& stats = result.stats;

  MinHeap pending;
  pending.push({0.0, 0, kNoScreen});  // root
  double delta = kInf;  // max divergence in the current solution set

  while (!pending.empty() && stats.leaves_visited < options.max_leaves) {
    const QueuedSubtree top = pending.top();
    pending.pop();
    if (options.use_pruning && !result.neighbors.empty()) {
      // With a precomputed screen (batched mode) the test skips straight to
      // the δ-dependent bisection refinement; the decision is identical.
      const BregmanBall& ball = nodes_[top.node].ball;
      const bool prune =
          top.screen >= 0.0
              ? ball.CanPruneScreened(ctx.kl_, top.screen, delta, &ctx.bisect_,
                                      &stats)
              : ball.CanPrune(ctx.kl_, delta, &ctx.bisect_, &stats);
      if (prune) {
        ++stats.subtrees_pruned;
        continue;
      }
    }
    ctx.siblings_.clear();
    const uint32_t leaf = DescendToLeaf(top.node, ctx, &stats);
    if (options.batched_screen && options.use_pruning &&
        !ctx.siblings_.empty()) {
      // One kernel sweep screens the whole bypassed frontier at enqueue
      // time; each entry carries its screen to the eventual pruning test.
      ctx.screen_ids_.clear();
      for (const QueuedSubtree& s : ctx.siblings_) {
        ctx.screen_ids_.push_back(s.node);
      }
      ScreenBalls(ctx.screen_ids_.data(), ctx.screen_ids_.size(), ctx, &stats);
      for (size_t i = 0; i < ctx.siblings_.size(); ++i) {
        ctx.siblings_[i].screen = ctx.screen_divs_[i];
      }
    }
    for (const auto& s : ctx.siblings_) pending.push(s);

    ++stats.leaves_visited;
    const Node& leaf_node = nodes_[leaf];
    const auto& leaf_ids = leaf_node.point_ids;
    ScanLeaf(leaf_node, ctx, &stats);
    for (size_t i = 0; i < leaf_ids.size(); ++i) {
      const double d = ctx.leaf_divs_[i];
      if (d <= options.epsilon_exact) {
        // ε-exact match: the index already contains (essentially) this very
        // item; return its seed list alone.
        result.neighbors.assign(1, Neighbor{leaf_ids[i], d});
        result.epsilon_exact = true;
        return result;
      }
      result.neighbors.push_back(Neighbor{leaf_ids[i], d});
      delta = std::max(delta == kInf ? d : delta, d);
    }
    if (options.use_ad_early_stop &&
        SimilarEnough(leaf_ids, ctx, options.ad_alpha)) {
      break;
    }
  }
  std::sort(result.neighbors.begin(), result.neighbors.end());
  return result;
}

std::vector<Neighbor> BbTree::LeafBoundedKnn(const simplex::TopicVector& query,
                                             size_t k, size_t max_leaves,
                                             SearchStats* stats,
                                             SearchContext* ctx) const {
  InflexSearchOptions options;
  options.epsilon_exact = -1.0;       // never short-circuit
  options.use_ad_early_stop = false;  // leaf budget is the only stop
  options.max_leaves = max_leaves;
  InflexSearchResult r = InflexSearch(query, options, ctx);
  if (stats != nullptr) *stats = r.stats;
  if (r.neighbors.size() > k) r.neighbors.resize(k);
  return std::move(r.neighbors);
}

std::vector<Neighbor> BbTree::ExactKnn(const simplex::TopicVector& query,
                                       size_t k, SearchStats* stats,
                                       SearchContext* ctx_in,
                                       bool batched_screen) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  INFLEX_CHECK_GT(k, 0u);
  SearchContext& ctx = Scratch(ctx_in);
  BindScratch(ctx);
  ctx.kl_.Reset(query);
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  // Best-first branch-and-bound on the Eq. 5 lower bound; a min-heap keyed
  // by the bound lets us stop as soon as the bound exceeds the k-th best.
  MinHeap pending;
  pending.push({0.0, 0, kNoScreen});
  std::priority_queue<Neighbor> best;  // max-heap: worst of the best on top

  while (!pending.empty()) {
    const auto [lower_bound, node_id, screen] = pending.top();
    pending.pop();
    (void)screen;  // ExactKnn refines bounds at enqueue time, not dequeue
    const double delta = best.size() == k ? best.top().divergence : kInf;
    if (lower_bound >= delta) {
      ++st.subtrees_pruned;
      break;  // min-heap: every remaining bound is at least as large
    }
    const Node& node = nodes_[node_id];
    ++st.nodes_visited;
    if (node.is_leaf()) {
      ++st.leaves_visited;
      ScanLeaf(node, ctx, &st);
      for (size_t i = 0; i < node.point_ids.size(); ++i) {
        const uint32_t pid = node.point_ids[i];
        const double d = ctx.leaf_divs_[i];
        if (best.size() < k) {
          best.push(Neighbor{pid, d});
        } else if (d < best.top().divergence) {
          best.pop();
          best.push(Neighbor{pid, d});
        }
      }
    } else {
      // Batched mode screens all children in one kernel sweep, then refines
      // each bound from its precomputed screen — the same evaluations the
      // per-child path performs, reordered, so kl_evaluations and every
      // pruning decision are identical.
      const size_t m = node.children.size();
      if (batched_screen && m > 0) {
        ScreenBalls(node.children.data(), m, ctx, &st);
      }
      for (size_t c = 0; c < m; ++c) {
        const uint32_t child = node.children[c];
        const BregmanBall& ball = nodes_[child].ball;
        const double lb =
            batched_screen
                ? ball.MinDivergenceScreened(ctx.kl_, ctx.screen_divs_[c],
                                             &ctx.bisect_, &st)
                : ball.MinDivergenceFrom(ctx.kl_, &ctx.bisect_, &st);
        const double cur_delta =
            best.size() == k ? best.top().divergence : kInf;
        if (lb < cur_delta) {
          pending.push({lb, child, kNoScreen});
        } else {
          ++st.subtrees_pruned;
        }
      }
    }
  }

  std::vector<Neighbor> out(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    out[i] = best.top();
    best.pop();
  }
  return out;
}

std::vector<Neighbor> BbTree::LinearScanKnn(const simplex::TopicVector& query,
                                            size_t k, SearchStats* stats,
                                            SearchContext* ctx_in) const {
  INFLEX_CHECK_EQ(query.size(), dim());
  SearchContext& ctx = Scratch(ctx_in);
  BindScratch(ctx);
  ctx.kl_.Reset(query);
  const size_t n = num_points();
  std::vector<Neighbor> all(n);
  Timer timer;
  // Sweep the flat buffer in physical row order (sequential memory).
  for (uint32_t row = 0; row < n; ++row) {
    all[row] =
        Neighbor{id_of_row_[row], ctx.kl_.Kl(row_ptr(row), point_negent_[row])};
  }
  if (stats != nullptr) {
    stats->kl_evaluations += n;
    stats->kl_ns += ElapsedNs(timer);
  }
  const size_t kk = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end());
  all.resize(kk);
  return all;
}

}  // namespace bbtree
}  // namespace inflex
