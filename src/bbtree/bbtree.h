#ifndef INFLEX_BBTREE_BBTREE_H_
#define INFLEX_BBTREE_BBTREE_H_

#include <cstdint>
#include <vector>

#include "bbtree/bregman_ball.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace bbtree {

/// \brief Construction options for the Bregman ball tree (§3.2).
struct BbTreeOptions {
  /// Nodes with at most this many points become leaves.
  size_t max_leaf_size = 16;
  /// Cap on the branching factor learned by G-means at each split.
  size_t max_branching = 4;
  /// Significance level of the Anderson-Darling test G-means uses to decide
  /// whether child Bregman balls would overlap (split further) or not.
  double gmeans_alpha = 0.05;
  uint64_t seed = 1;
};

/// \brief One retrieved index point.
struct Neighbor {
  uint32_t point_id = 0;
  /// D_KL(point ‖ query) — the paper's right-sided divergence.
  double divergence = 0.0;

  bool operator<(const Neighbor& other) const {
    if (divergence != other.divergence) return divergence < other.divergence;
    return point_id < other.point_id;
  }
};

/// \brief Instrumentation shared by all search procedures; the paper reports
/// KL-evaluation counts and leaves visited for Figure 5 and the early-stop
/// analysis.
struct SearchStats {
  size_t kl_evaluations = 0;
  size_t leaves_visited = 0;
  size_t nodes_visited = 0;
  size_t subtrees_pruned = 0;
};

/// \brief Options for the INFLEX similarity search (Algorithm 1).
struct InflexSearchOptions {
  /// ε of the ε-exact match shortcut.
  double epsilon_exact = 1e-9;
  /// Significance level of the Anderson-Darling `similar_enough` test. The
  /// search stops once the null ("the query blends into the leaf
  /// population") is ACCEPTED, i.e. p ≥ ad_alpha — so larger values make
  /// the search explore more leaves. The paper does not report its α; 0.75
  /// reproduces its observed behaviour (~3.7 of the 5 allowed leaves visited
  /// on average), whereas a textbook 0.05 stops after ~1.3 leaves.
  double ad_alpha = 0.75;
  /// Hard cap on visited leaves ("in all our experiments we keep this value
  /// equal to 5").
  size_t max_leaves = 5;
  /// Use the Eq. 5 Bregman-projection bound to prune queued subtrees.
  bool use_pruning = true;
  /// Disable the AD early stop (the paper's leaf-count-only `approxKNN`
  /// search sets this false).
  bool use_ad_early_stop = true;
};

/// \brief Result of the INFLEX similarity search.
struct InflexSearchResult {
  /// Retrieved neighbors sorted by ascending divergence. For an ε-exact
  /// match this is exactly one entry.
  std::vector<Neighbor> neighbors;
  /// True when the ε-exact shortcut fired.
  bool epsilon_exact = false;
  SearchStats stats;
};

/// \brief Bregman ball tree over a set of topic distributions, built
/// top-down with Bregman K-means++ splits whose branching factor is learned
/// by G-means (Nielsen et al. 2009), following §3.2. After Build() the tree
/// additionally supports online point insertion (Insert) for live index
/// maintenance; inserted points degrade the partition quality, which
/// degradation() quantifies so a maintainer can decide when to rebuild.
class BbTree {
 public:
  /// Creates an empty tree; usable only as a move-assignment target.
  BbTree() = default;

  /// Builds the tree. Fails on an empty point set or inconsistent
  /// dimensions.
  static Result<BbTree> Build(std::vector<simplex::TopicVector> points,
                              const BbTreeOptions& options = {});

  /// Inserts one point online in O(depth): descends from the root picking at
  /// each level the child minimizing D_KL(center ‖ point) (the same rule
  /// every search uses to order its descent), appends the point to the
  /// reached leaf, and conservatively enlarges each ball on the path to
  /// contain the point. All search bounds stay sound — ExactKnn remains
  /// exact — but leaves grow beyond max_leaf_size and ball radii beyond
  /// their built-time tightness, which is what degradation() tracks.
  /// Returns the new point id (= num_points() before the call). Fails on a
  /// dimension mismatch.
  Result<uint32_t> Insert(simplex::TopicVector point);

  /// Number of points added by Insert() since Build().
  size_t num_inserted() const { return num_inserted_; }

  /// Quality loss of the incrementally maintained tree, 0 for a freshly
  /// built one: the fraction of points that arrived via Insert() plus the
  /// worst leaf's relative occupancy overflow beyond the configured
  /// max_leaf_size. A maintainer triggers a full §3.2 rebuild once this
  /// crosses its threshold.
  double degradation() const;

  size_t num_points() const { return points_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const { return num_leaves_; }
  size_t depth() const { return depth_; }
  size_t dim() const { return points_.empty() ? 0 : points_.front().size(); }

  /// The indexed point with the given id (ids are positions in the input).
  const simplex::TopicVector& point(uint32_t id) const { return points_[id]; }

  /// Exact K nearest neighbors under D_KL(point ‖ query), by best-first
  /// branch-and-bound with the Eq. 5 bound (used by the paper's `exactKNN`
  /// baseline; also the ground truth for recall experiments).
  std::vector<Neighbor> ExactKnn(const simplex::TopicVector& query, size_t k,
                                 SearchStats* stats = nullptr) const;

  /// Approximate K-NN bounded by a maximum number of visited leaves
  /// (the paper's `approxKNN` baseline; with max_leaves = num_leaves() it
  /// degenerates to exact search order without the K-bound guarantee).
  std::vector<Neighbor> LeafBoundedKnn(const simplex::TopicVector& query,
                                       size_t k, size_t max_leaves,
                                       SearchStats* stats = nullptr) const;

  /// Algorithm 1: the unbounded INFLEX similarity search with ε-exact
  /// shortcut, Anderson-Darling early stop and Bregman-projection pruning.
  InflexSearchResult InflexSearch(const simplex::TopicVector& query,
                                  const InflexSearchOptions& options = {}) const;

  /// Linear scan over all points (reference; O(Z·h) as the paper notes).
  std::vector<Neighbor> LinearScanKnn(const simplex::TopicVector& query,
                                      size_t k,
                                      SearchStats* stats = nullptr) const;

 private:
  friend class BbTreeBuilder;

  struct Node {
    BregmanBall ball;
    /// Child node ids (empty for leaves).
    std::vector<uint32_t> children;
    /// Point ids stored here (leaves only).
    std::vector<uint32_t> point_ids;
    bool is_leaf() const { return children.empty(); }
  };

  const Node& root() const { return nodes_[0]; }

  /// Descends greedily from `node_id` to a leaf, choosing at every level the
  /// child whose center is closest to the query (arg min of D_KL(μ_c ‖ q),
  /// as in Algorithm 1) and appending the bypassed siblings to
  /// `siblings_out`; returns the leaf id. Shared by all tree searches.
  uint32_t DescendToLeaf(
      uint32_t node_id, const simplex::TopicVector& query, SearchStats* stats,
      std::vector<std::pair<double, uint32_t>>* siblings_out) const;

  std::vector<simplex::TopicVector> points_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
  size_t num_leaves_ = 0;
  size_t depth_ = 0;
  // Online-insert bookkeeping (see Insert/degradation).
  BbTreeOptions options_;
  size_t num_inserted_ = 0;
  size_t largest_leaf_ = 0;
};

}  // namespace bbtree
}  // namespace inflex

#endif  // INFLEX_BBTREE_BBTREE_H_
