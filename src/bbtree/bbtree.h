#ifndef INFLEX_BBTREE_BBTREE_H_
#define INFLEX_BBTREE_BBTREE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "bbtree/bregman_ball.h"
#include "simplex/kl_kernel.h"
#include "simplex/topic_distribution.h"
#include "util/aligned.h"
#include "util/status.h"

namespace inflex {
namespace bbtree {

/// \brief Construction options for the Bregman ball tree (§3.2).
struct BbTreeOptions {
  /// Nodes with at most this many points become leaves.
  size_t max_leaf_size = 16;
  /// Cap on the branching factor learned by G-means at each split.
  size_t max_branching = 4;
  /// Significance level of the Anderson-Darling test G-means uses to decide
  /// whether child Bregman balls would overlap (split further) or not.
  double gmeans_alpha = 0.05;
  uint64_t seed = 1;
};

/// \brief One retrieved index point.
struct Neighbor {
  uint32_t point_id = 0;
  /// D_KL(point ‖ query) — the paper's right-sided divergence.
  double divergence = 0.0;

  bool operator<(const Neighbor& other) const {
    if (divergence != other.divergence) return divergence < other.divergence;
    return point_id < other.point_id;
  }
};

/// \brief Options for the INFLEX similarity search (Algorithm 1).
struct InflexSearchOptions {
  /// ε of the ε-exact match shortcut.
  double epsilon_exact = 1e-9;
  /// Significance level of the Anderson-Darling `similar_enough` test. The
  /// search stops once the null ("the query blends into the leaf
  /// population") is ACCEPTED, i.e. p ≥ ad_alpha — so larger values make
  /// the search explore more leaves. The paper does not report its α; 0.75
  /// reproduces its observed behaviour (~3.7 of the 5 allowed leaves visited
  /// on average), whereas a textbook 0.05 stops after ~1.3 leaves.
  double ad_alpha = 0.75;
  /// Hard cap on visited leaves ("in all our experiments we keep this value
  /// equal to 5").
  size_t max_leaves = 5;
  /// Use the Eq. 5 Bregman-projection bound to prune queued subtrees.
  bool use_pruning = true;
  /// Disable the AD early stop (the paper's leaf-count-only `approxKNN`
  /// search sets this false).
  bool use_ad_early_stop = true;
  /// Compute the Eq. 5 screen D_KL(q ‖ μ) for all bypassed siblings of a
  /// descent in one batched kernel sweep at enqueue time instead of one
  /// scalar evaluation per CanPrune call at dequeue time (DESIGN.md §10).
  /// The screen depends only on (query, ball), never on δ, so the pruning
  /// decisions — and therefore the result set — are bit-identical either
  /// way; only when the evaluations happen changes. Off = the pre-batching
  /// code path (kept for A/B tests and the equivalence suite).
  bool batched_screen = true;
};

/// \brief One queued (bypassed, not yet descended) subtree of a search:
/// the heap key plus the batched-screen value D_KL(q ‖ μ) when one was
/// precomputed for the ball (negative = no screen yet; the pruning test
/// then evaluates it on demand, exactly as before batching).
struct QueuedSubtree {
  double key = 0.0;
  uint32_t node = 0;
  double screen = -1.0;
};

/// \brief Result of the INFLEX similarity search.
struct InflexSearchResult {
  /// Retrieved neighbors sorted by ascending divergence. For an ε-exact
  /// match this is exactly one entry.
  std::vector<Neighbor> neighbors;
  /// True when the ε-exact shortcut fired.
  bool epsilon_exact = false;
  SearchStats stats;
};

/// \brief Reusable per-query scratch for the tree searches: the KL query
/// context (clamped log(q), −H(q)), the bisection buffers, and every
/// per-level/per-leaf vector the search loops need. Searches given a nullptr
/// context fall back to an internal thread_local instance, so steady-state
/// tree search allocates nothing either way; passing an explicit context
/// merely makes the reuse visible at the call site.
///
/// A context is not bound to one tree: every search entry point re-validates
/// the scratch against the tree it is about to search (BindTo), so one
/// long-lived context — in particular the thread_local fallback on a serving
/// thread — can serve trees of different dimension and point count back to
/// back, and a single worst-case query cannot pin its high-water scratch
/// forever (capacity far beyond the bound tree's needs is released).
class SearchContext {
 public:
  SearchContext() = default;

  /// Total retained scratch capacity in doubles (ops/testing visibility;
  /// sibling/screen-id entries count as one double each).
  size_t retained_capacity() const {
    return kl_.retained_capacity() + bisect_.x.capacity() +
           bisect_.u.capacity() + siblings_.capacity() +
           child_divs_.capacity() + leaf_divs_.capacity() + mean_.capacity() +
           direction_.capacity() + sample_.capacity() +
           screen_rows_.capacity() + screen_divs_.capacity() +
           screen_ids_.capacity();
  }

 private:
  friend class BbTree;

  /// Re-validates the scratch against a tree with the given dimension, worst
  /// leaf occupancy and branching factor: buffers whose retained capacity is
  /// far beyond what that tree can demand are released (4× hysteresis above
  /// a small floor, so steady-state reuse on one tree never reallocates).
  void BindTo(size_t dim, size_t max_leaf, size_t max_children);

  simplex::KlQueryContext kl_;
  BisectionScratch bisect_;
  /// Bypassed siblings of one descent, hoisted out of the per-level loop.
  std::vector<QueuedSubtree> siblings_;
  /// Batched-screen gather scratch (BbTree::ScreenBalls): the queued balls'
  /// log-centers as stride-padded 64B-aligned rows, the node ids gathered,
  /// and the screen divergences the one-sweep kernel writes.
  util::AlignedVector<double> screen_rows_;
  std::vector<uint32_t> screen_ids_;
  std::vector<double> screen_divs_;
  /// Per-level child divergences (was `evaluated`, reallocated per level).
  std::vector<double> child_divs_;
  /// Leaf-scan batch output, aligned with the leaf's point ids.
  std::vector<double> leaf_divs_;
  // `similar_enough` scratch (leaf mean, projection direction, AD sample).
  std::vector<double> mean_;
  std::vector<double> direction_;
  std::vector<double> sample_;
};

/// \brief Bregman ball tree over a set of topic distributions, built
/// top-down with Bregman K-means++ splits whose branching factor is learned
/// by G-means (Nielsen et al. 2009), following §3.2. After Build() the tree
/// additionally supports online point insertion (Insert) for live index
/// maintenance; inserted points degrade the partition quality, which
/// degradation() quantifies so a maintainer can decide when to rebuild.
///
/// Storage (kernel layer, DESIGN.md §10): points live in one flat row-major
/// buffer ordered so that each built leaf occupies a contiguous block of
/// rows, with per-row precomputed negative entropies and an id↔row
/// indirection (ids are stable positions in the input; rows are the physical
/// layout). Rows are padded to row_stride() doubles (the next cache-line
/// multiple) and the buffer is 64-byte aligned, so every row starts on a
/// cache-line boundary and a SIMD load never straddles two lines; padding is
/// zero-filled and never read by the kernels. Every internal node mirrors
/// its children's ball centers in a contiguous child matrix with the same
/// stride. All searches evaluate D_KL through the factorized kernel
/// (simplex/kl_kernel.h): one clamped log transform per query, one dot
/// product per evaluation.
class BbTree {
 public:
  /// Creates an empty tree; usable only as a move-assignment target.
  BbTree() = default;

  /// Builds the tree. Fails on an empty point set or inconsistent
  /// dimensions.
  static Result<BbTree> Build(std::vector<simplex::TopicVector> points,
                              const BbTreeOptions& options = {});

  /// Inserts one point online in O(depth): descends from the root picking at
  /// each level the child minimizing D_KL(center ‖ point) (the same rule
  /// every search uses to order its descent), appends the point to the
  /// reached leaf, and conservatively enlarges each ball on the path to
  /// contain the point. All search bounds stay sound — ExactKnn remains
  /// exact — but leaves grow beyond max_leaf_size and ball radii beyond
  /// their built-time tightness, which is what degradation() tracks.
  /// The point's row is appended to the flat buffer (inserted points are not
  /// leaf-contiguous until the next Build/Compact). Returns the new point id
  /// (= num_points() before the call). Fails on a dimension mismatch.
  Result<uint32_t> Insert(simplex::TopicVector point);

  /// Number of points added by Insert() since Build().
  size_t num_inserted() const { return num_inserted_; }

  /// Number of points dropped by RemovePoints() since Build().
  size_t num_removed() const { return num_removed_; }

  /// Removes the given points online (duplicates tolerated; ids must be in
  /// range and at least one point must survive). Surviving points are
  /// renumbered to dense ids preserving their relative order, the flat SoA
  /// rows are physically compacted in row order (surviving leaf runs stay
  /// contiguous), and the ids are dropped from their leaves. Balls are NOT
  /// shrunk — a conservative (too large) ball only weakens pruning, every
  /// bound stays sound and ExactKnn stays exact — which is what degradation()
  /// tracks until the next Build/Compact rebuild restores tightness.
  Status RemovePoints(std::span<const uint32_t> ids);

  /// Quality loss of the incrementally maintained tree, 0 for a freshly
  /// built one: the fraction of points that arrived via Insert() or left via
  /// RemovePoints() since the last build, plus the worst leaf's relative
  /// occupancy overflow beyond its built-time size. A maintainer triggers a
  /// full §3.2 rebuild once this crosses its threshold. Guaranteed to be 0
  /// immediately after Build() — even when a degenerate split left an
  /// oversized leaf, the built shape is the baseline, not an overflow.
  double degradation() const;

  size_t num_points() const { return row_of_id_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const { return num_leaves_; }
  size_t depth() const { return depth_; }
  size_t dim() const { return dim_; }
  /// Physical row length of the SoA buffers in doubles: dim() rounded up to
  /// the next cache-line multiple (util::AlignedRowStride).
  size_t row_stride() const { return row_stride_; }

  /// A copy of the indexed point with the given id (ids are positions in the
  /// input). The backing storage is the flat SoA buffer; use point_span()
  /// for copy-free access.
  simplex::TopicVector point(uint32_t id) const;

  /// Copy-free view of the indexed point's row in the SoA buffer (the dim()
  /// real values; the row's alignment padding is not part of the span).
  std::span<const double> point_span(uint32_t id) const {
    const size_t row = row_of_id_[id];
    return {point_data_.data() + row * row_stride_, dim_};
  }

  /// Precomputed Σ p_z·log p_z (= −H(p)) of the indexed point.
  double point_neg_entropy(uint32_t id) const {
    return point_negent_[row_of_id_[id]];
  }

  /// Exact K nearest neighbors under D_KL(point ‖ query), by best-first
  /// branch-and-bound with the Eq. 5 bound (used by the paper's `exactKNN`
  /// baseline; also the ground truth for recall experiments).
  /// `batched_screen` mirrors InflexSearchOptions::batched_screen: child
  /// lower bounds start from one batched screen sweep per expanded node
  /// instead of a scalar evaluation per child. Results, pruning decisions
  /// and kl_evaluations counts are identical either way (the sweep performs
  /// exactly the per-child screen evaluations it replaces).
  std::vector<Neighbor> ExactKnn(const simplex::TopicVector& query, size_t k,
                                 SearchStats* stats = nullptr,
                                 SearchContext* ctx = nullptr,
                                 bool batched_screen = true) const;

  /// Approximate K-NN bounded by a maximum number of visited leaves
  /// (the paper's `approxKNN` baseline; with max_leaves = num_leaves() it
  /// degenerates to exact search order without the K-bound guarantee).
  std::vector<Neighbor> LeafBoundedKnn(const simplex::TopicVector& query,
                                       size_t k, size_t max_leaves,
                                       SearchStats* stats = nullptr,
                                       SearchContext* ctx = nullptr) const;

  /// Algorithm 1: the unbounded INFLEX similarity search with ε-exact
  /// shortcut, Anderson-Darling early stop and Bregman-projection pruning.
  InflexSearchResult InflexSearch(const simplex::TopicVector& query,
                                  const InflexSearchOptions& options = {},
                                  SearchContext* ctx = nullptr) const;

  /// Linear scan over all points (reference; O(Z·h) as the paper notes).
  /// Sweeps the flat buffer in row order.
  std::vector<Neighbor> LinearScanKnn(const simplex::TopicVector& query,
                                      size_t k, SearchStats* stats = nullptr,
                                      SearchContext* ctx = nullptr) const;

 private:
  friend class BbTreeBuilder;

  struct Node {
    BregmanBall ball;
    /// Child node ids (empty for leaves).
    std::vector<uint32_t> children;
    /// Point ids stored here (leaves only).
    std::vector<uint32_t> point_ids;
    /// SoA mirror of the children's ball centers (children.size() rows of
    /// row_stride() doubles, 64B-aligned) with their negative entropies: the
    /// per-level descent evaluation is one contiguous batch-kernel sweep.
    /// Filled by FinalizeKernelData; centers never change afterwards (Insert
    /// only enlarges radii), so no maintenance is needed.
    util::AlignedVector<double> child_centers;
    std::vector<double> child_center_negent;
    bool is_leaf() const { return children.empty(); }
  };

  const Node& root() const { return nodes_[0]; }

  /// Fills the SoA point buffer (leaf-contiguous rows + id↔row maps +
  /// per-row negative entropies) and every node's child-center matrix.
  /// Called once at the end of Build.
  void FinalizeKernelData(const std::vector<simplex::TopicVector>& input);

  /// Re-validates a (possibly long-lived thread_local) context against this
  /// tree before a search runs: see SearchContext::BindTo.
  void BindScratch(SearchContext& ctx) const {
    ctx.BindTo(dim_, largest_leaf_, max_children_);
  }

  /// Descends greedily from `node_id` to a leaf, choosing at every level the
  /// child whose center is closest to the query (arg min of D_KL(μ_c ‖ q),
  /// as in Algorithm 1, evaluated as one batch over the node's child matrix)
  /// and appending the bypassed siblings to ctx.siblings_; returns the leaf
  /// id. Shared by all tree searches.
  uint32_t DescendToLeaf(uint32_t node_id, SearchContext& ctx,
                         SearchStats* stats) const;

  /// Evaluates D_KL(p ‖ q) for every point of `leaf` against the context's
  /// query into ctx.leaf_divs_ (aligned with leaf.point_ids).
  void ScanLeaf(const Node& leaf, SearchContext& ctx,
                SearchStats* stats) const;

  /// The batched bisection screen (DESIGN.md §10): gathers the log-centers
  /// of the given nodes' balls into ctx.screen_rows_ (stride-padded aligned
  /// rows) and computes every screen divergence D_KL(q ‖ μ_i) in one
  /// KlBatchTargets sweep into ctx.screen_divs_ (aligned with node_ids).
  /// Each entry is bit-identical to what KlQueryContext::KlOfQueryAgainst
  /// would return for that ball, so downstream pruning decisions are
  /// unchanged by batching.
  void ScreenBalls(const uint32_t* node_ids, size_t m, SearchContext& ctx,
                   SearchStats* stats) const;

  /// The `similar_enough` AD test of Algorithm 1 over a leaf population.
  bool SimilarEnough(const std::vector<uint32_t>& leaf_ids, SearchContext& ctx,
                     double ad_alpha) const;

  const double* row_ptr(uint32_t row) const {
    return point_data_.data() + static_cast<size_t>(row) * row_stride_;
  }

  // Flat SoA point storage: rows are leaf-contiguous after Build (inserted
  // points append), ids are stable input positions. Rows are row_stride_
  // doubles (cache-line padded, zero-filled tail) in a 64B-aligned buffer.
  size_t dim_ = 0;
  size_t row_stride_ = 0;  // util::AlignedRowStride(dim_), set by Finalize
  util::AlignedVector<double> point_data_;  // num_points × row_stride_
  std::vector<double> point_negent_;    // per row: Σ p_z·log p_z
  std::vector<uint32_t> row_of_id_;
  std::vector<uint32_t> id_of_row_;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  size_t num_leaves_ = 0;
  size_t depth_ = 0;
  size_t max_children_ = 0;  // widest node's branching (scratch sizing)
  // Online insert/removal bookkeeping (see Insert/RemovePoints/degradation).
  BbTreeOptions options_;
  size_t num_inserted_ = 0;
  size_t num_removed_ = 0;
  size_t largest_leaf_ = 0;
  size_t built_largest_leaf_ = 0;  // baseline for the overflow term
};

}  // namespace bbtree
}  // namespace inflex

#endif  // INFLEX_BBTREE_BBTREE_H_
