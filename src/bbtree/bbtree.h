#ifndef INFLEX_BBTREE_BBTREE_H_
#define INFLEX_BBTREE_BBTREE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "bbtree/bregman_ball.h"
#include "simplex/kl_kernel.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace bbtree {

/// \brief Construction options for the Bregman ball tree (§3.2).
struct BbTreeOptions {
  /// Nodes with at most this many points become leaves.
  size_t max_leaf_size = 16;
  /// Cap on the branching factor learned by G-means at each split.
  size_t max_branching = 4;
  /// Significance level of the Anderson-Darling test G-means uses to decide
  /// whether child Bregman balls would overlap (split further) or not.
  double gmeans_alpha = 0.05;
  uint64_t seed = 1;
};

/// \brief One retrieved index point.
struct Neighbor {
  uint32_t point_id = 0;
  /// D_KL(point ‖ query) — the paper's right-sided divergence.
  double divergence = 0.0;

  bool operator<(const Neighbor& other) const {
    if (divergence != other.divergence) return divergence < other.divergence;
    return point_id < other.point_id;
  }
};

/// \brief Options for the INFLEX similarity search (Algorithm 1).
struct InflexSearchOptions {
  /// ε of the ε-exact match shortcut.
  double epsilon_exact = 1e-9;
  /// Significance level of the Anderson-Darling `similar_enough` test. The
  /// search stops once the null ("the query blends into the leaf
  /// population") is ACCEPTED, i.e. p ≥ ad_alpha — so larger values make
  /// the search explore more leaves. The paper does not report its α; 0.75
  /// reproduces its observed behaviour (~3.7 of the 5 allowed leaves visited
  /// on average), whereas a textbook 0.05 stops after ~1.3 leaves.
  double ad_alpha = 0.75;
  /// Hard cap on visited leaves ("in all our experiments we keep this value
  /// equal to 5").
  size_t max_leaves = 5;
  /// Use the Eq. 5 Bregman-projection bound to prune queued subtrees.
  bool use_pruning = true;
  /// Disable the AD early stop (the paper's leaf-count-only `approxKNN`
  /// search sets this false).
  bool use_ad_early_stop = true;
};

/// \brief Result of the INFLEX similarity search.
struct InflexSearchResult {
  /// Retrieved neighbors sorted by ascending divergence. For an ε-exact
  /// match this is exactly one entry.
  std::vector<Neighbor> neighbors;
  /// True when the ε-exact shortcut fired.
  bool epsilon_exact = false;
  SearchStats stats;
};

/// \brief Reusable per-query scratch for the tree searches: the KL query
/// context (clamped log(q), −H(q)), the bisection buffers, and every
/// per-level/per-leaf vector the search loops need. Searches given a nullptr
/// context fall back to an internal thread_local instance, so steady-state
/// tree search allocates nothing either way; passing an explicit context
/// merely makes the reuse visible at the call site.
///
/// A context is not bound to one tree: every search entry point re-validates
/// the scratch against the tree it is about to search (BindTo), so one
/// long-lived context — in particular the thread_local fallback on a serving
/// thread — can serve trees of different dimension and point count back to
/// back, and a single worst-case query cannot pin its high-water scratch
/// forever (capacity far beyond the bound tree's needs is released).
class SearchContext {
 public:
  SearchContext() = default;

  /// Total retained scratch capacity in doubles (ops/testing visibility;
  /// sibling-pair entries count as one double each).
  size_t retained_capacity() const {
    return kl_.retained_capacity() + bisect_.x.capacity() +
           bisect_.u.capacity() + siblings_.capacity() +
           child_divs_.capacity() + leaf_divs_.capacity() + mean_.capacity() +
           direction_.capacity() + sample_.capacity();
  }

 private:
  friend class BbTree;

  /// Re-validates the scratch against a tree with the given dimension, worst
  /// leaf occupancy and branching factor: buffers whose retained capacity is
  /// far beyond what that tree can demand are released (4× hysteresis above
  /// a small floor, so steady-state reuse on one tree never reallocates).
  void BindTo(size_t dim, size_t max_leaf, size_t max_children);

  simplex::KlQueryContext kl_;
  BisectionScratch bisect_;
  /// Bypassed siblings of one descent, hoisted out of the per-level loop.
  std::vector<std::pair<double, uint32_t>> siblings_;
  /// Per-level child divergences (was `evaluated`, reallocated per level).
  std::vector<double> child_divs_;
  /// Leaf-scan batch output, aligned with the leaf's point ids.
  std::vector<double> leaf_divs_;
  // `similar_enough` scratch (leaf mean, projection direction, AD sample).
  std::vector<double> mean_;
  std::vector<double> direction_;
  std::vector<double> sample_;
};

/// \brief Bregman ball tree over a set of topic distributions, built
/// top-down with Bregman K-means++ splits whose branching factor is learned
/// by G-means (Nielsen et al. 2009), following §3.2. After Build() the tree
/// additionally supports online point insertion (Insert) for live index
/// maintenance; inserted points degrade the partition quality, which
/// degradation() quantifies so a maintainer can decide when to rebuild.
///
/// Storage (kernel layer, DESIGN.md §10): points live in one flat row-major
/// buffer ordered so that each built leaf occupies a contiguous block of
/// rows, with per-row precomputed negative entropies and an id↔row
/// indirection (ids are stable positions in the input; rows are the physical
/// layout). Every internal node mirrors its children's ball centers in a
/// contiguous child matrix. All searches evaluate D_KL through the
/// factorized kernel (simplex/kl_kernel.h): one clamped log transform per
/// query, one dot product per evaluation.
class BbTree {
 public:
  /// Creates an empty tree; usable only as a move-assignment target.
  BbTree() = default;

  /// Builds the tree. Fails on an empty point set or inconsistent
  /// dimensions.
  static Result<BbTree> Build(std::vector<simplex::TopicVector> points,
                              const BbTreeOptions& options = {});

  /// Inserts one point online in O(depth): descends from the root picking at
  /// each level the child minimizing D_KL(center ‖ point) (the same rule
  /// every search uses to order its descent), appends the point to the
  /// reached leaf, and conservatively enlarges each ball on the path to
  /// contain the point. All search bounds stay sound — ExactKnn remains
  /// exact — but leaves grow beyond max_leaf_size and ball radii beyond
  /// their built-time tightness, which is what degradation() tracks.
  /// The point's row is appended to the flat buffer (inserted points are not
  /// leaf-contiguous until the next Build/Compact). Returns the new point id
  /// (= num_points() before the call). Fails on a dimension mismatch.
  Result<uint32_t> Insert(simplex::TopicVector point);

  /// Number of points added by Insert() since Build().
  size_t num_inserted() const { return num_inserted_; }

  /// Number of points dropped by RemovePoints() since Build().
  size_t num_removed() const { return num_removed_; }

  /// Removes the given points online (duplicates tolerated; ids must be in
  /// range and at least one point must survive). Surviving points are
  /// renumbered to dense ids preserving their relative order, the flat SoA
  /// rows are physically compacted in row order (surviving leaf runs stay
  /// contiguous), and the ids are dropped from their leaves. Balls are NOT
  /// shrunk — a conservative (too large) ball only weakens pruning, every
  /// bound stays sound and ExactKnn stays exact — which is what degradation()
  /// tracks until the next Build/Compact rebuild restores tightness.
  Status RemovePoints(std::span<const uint32_t> ids);

  /// Quality loss of the incrementally maintained tree, 0 for a freshly
  /// built one: the fraction of points that arrived via Insert() or left via
  /// RemovePoints() since the last build, plus the worst leaf's relative
  /// occupancy overflow beyond its built-time size. A maintainer triggers a
  /// full §3.2 rebuild once this crosses its threshold. Guaranteed to be 0
  /// immediately after Build() — even when a degenerate split left an
  /// oversized leaf, the built shape is the baseline, not an overflow.
  double degradation() const;

  size_t num_points() const { return row_of_id_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const { return num_leaves_; }
  size_t depth() const { return depth_; }
  size_t dim() const { return dim_; }

  /// A copy of the indexed point with the given id (ids are positions in the
  /// input). The backing storage is the flat SoA buffer; use point_span()
  /// for copy-free access.
  simplex::TopicVector point(uint32_t id) const;

  /// Copy-free view of the indexed point's row in the SoA buffer.
  std::span<const double> point_span(uint32_t id) const {
    const size_t row = row_of_id_[id];
    return {point_data_.data() + row * dim_, dim_};
  }

  /// Precomputed Σ p_z·log p_z (= −H(p)) of the indexed point.
  double point_neg_entropy(uint32_t id) const {
    return point_negent_[row_of_id_[id]];
  }

  /// Exact K nearest neighbors under D_KL(point ‖ query), by best-first
  /// branch-and-bound with the Eq. 5 bound (used by the paper's `exactKNN`
  /// baseline; also the ground truth for recall experiments).
  std::vector<Neighbor> ExactKnn(const simplex::TopicVector& query, size_t k,
                                 SearchStats* stats = nullptr,
                                 SearchContext* ctx = nullptr) const;

  /// Approximate K-NN bounded by a maximum number of visited leaves
  /// (the paper's `approxKNN` baseline; with max_leaves = num_leaves() it
  /// degenerates to exact search order without the K-bound guarantee).
  std::vector<Neighbor> LeafBoundedKnn(const simplex::TopicVector& query,
                                       size_t k, size_t max_leaves,
                                       SearchStats* stats = nullptr,
                                       SearchContext* ctx = nullptr) const;

  /// Algorithm 1: the unbounded INFLEX similarity search with ε-exact
  /// shortcut, Anderson-Darling early stop and Bregman-projection pruning.
  InflexSearchResult InflexSearch(const simplex::TopicVector& query,
                                  const InflexSearchOptions& options = {},
                                  SearchContext* ctx = nullptr) const;

  /// Linear scan over all points (reference; O(Z·h) as the paper notes).
  /// Sweeps the flat buffer in row order.
  std::vector<Neighbor> LinearScanKnn(const simplex::TopicVector& query,
                                      size_t k, SearchStats* stats = nullptr,
                                      SearchContext* ctx = nullptr) const;

 private:
  friend class BbTreeBuilder;

  struct Node {
    BregmanBall ball;
    /// Child node ids (empty for leaves).
    std::vector<uint32_t> children;
    /// Point ids stored here (leaves only).
    std::vector<uint32_t> point_ids;
    /// SoA mirror of the children's ball centers (children.size() × dim,
    /// row-major) with their negative entropies: the per-level descent
    /// evaluation is one contiguous batch-kernel sweep. Filled by
    /// FinalizeKernelData; centers never change afterwards (Insert only
    /// enlarges radii), so no maintenance is needed.
    std::vector<double> child_centers;
    std::vector<double> child_center_negent;
    bool is_leaf() const { return children.empty(); }
  };

  const Node& root() const { return nodes_[0]; }

  /// Fills the SoA point buffer (leaf-contiguous rows + id↔row maps +
  /// per-row negative entropies) and every node's child-center matrix.
  /// Called once at the end of Build.
  void FinalizeKernelData(const std::vector<simplex::TopicVector>& input);

  /// Re-validates a (possibly long-lived thread_local) context against this
  /// tree before a search runs: see SearchContext::BindTo.
  void BindScratch(SearchContext& ctx) const {
    ctx.BindTo(dim_, largest_leaf_, max_children_);
  }

  /// Descends greedily from `node_id` to a leaf, choosing at every level the
  /// child whose center is closest to the query (arg min of D_KL(μ_c ‖ q),
  /// as in Algorithm 1, evaluated as one batch over the node's child matrix)
  /// and appending the bypassed siblings to ctx.siblings_; returns the leaf
  /// id. Shared by all tree searches.
  uint32_t DescendToLeaf(uint32_t node_id, SearchContext& ctx,
                         SearchStats* stats) const;

  /// Evaluates D_KL(p ‖ q) for every point of `leaf` against the context's
  /// query into ctx.leaf_divs_ (aligned with leaf.point_ids).
  void ScanLeaf(const Node& leaf, SearchContext& ctx,
                SearchStats* stats) const;

  /// The `similar_enough` AD test of Algorithm 1 over a leaf population.
  bool SimilarEnough(const std::vector<uint32_t>& leaf_ids, SearchContext& ctx,
                     double ad_alpha) const;

  const double* row_ptr(uint32_t row) const {
    return point_data_.data() + static_cast<size_t>(row) * dim_;
  }

  // Flat SoA point storage: rows are leaf-contiguous after Build (inserted
  // points append), ids are stable input positions.
  size_t dim_ = 0;
  std::vector<double> point_data_;      // num_points × dim_, row-major
  std::vector<double> point_negent_;    // per row: Σ p_z·log p_z
  std::vector<uint32_t> row_of_id_;
  std::vector<uint32_t> id_of_row_;

  std::vector<Node> nodes_;  // nodes_[0] is the root
  size_t num_leaves_ = 0;
  size_t depth_ = 0;
  size_t max_children_ = 0;  // widest node's branching (scratch sizing)
  // Online insert/removal bookkeeping (see Insert/RemovePoints/degradation).
  BbTreeOptions options_;
  size_t num_inserted_ = 0;
  size_t num_removed_ = 0;
  size_t largest_leaf_ = 0;
  size_t built_largest_leaf_ = 0;  // baseline for the overflow term
};

}  // namespace bbtree
}  // namespace inflex

#endif  // INFLEX_BBTREE_BBTREE_H_
