#ifndef INFLEX_BBTREE_BREGMAN_BALL_H_
#define INFLEX_BBTREE_BREGMAN_BALL_H_

#include <vector>

#include "simplex/topic_distribution.h"

namespace inflex {
namespace bbtree {

/// \brief A Bregman ball under the KL generator (Eq. 4):
/// B(μ, R) = { x : D_KL(x ‖ μ) ≤ R }.
///
/// Provides the pruning primitive of the INFLEX search (Eq. 5): a sound
/// lower bound on min_{x ∈ B} D_KL(x ‖ q), computed by projecting the query
/// onto the ball with Cayton's bisection along the dual geodesic
///   x_λ = ∇f*((1−λ)·∇f(q) + λ·∇f(μ)),
/// which for the KL generator on the simplex is the normalized geometric
/// mixture x_λ ∝ q^{1−λ} μ^λ. The primal (inside the ball) and dual
/// (outside) endpoints of the bisection bracket yield upper and lower bounds
/// that allow early termination as soon as the δ-comparison is resolved.
class BregmanBall {
 public:
  BregmanBall() = default;
  BregmanBall(simplex::TopicVector center, double radius)
      : center_(std::move(center)), radius_(radius) {}

  const simplex::TopicVector& center() const { return center_; }
  double radius() const { return radius_; }

  /// True when x lies in the ball: D_KL(x ‖ center) ≤ radius (+slack).
  bool Contains(const simplex::TopicVector& x, double slack = 1e-12) const;

  /// Lower bound on min_{x ∈ B} D_KL(x ‖ q). Exact up to bisection
  /// tolerance; always ≤ the true minimum. `kl_evaluations` (optional) is
  /// incremented by the number of divergence evaluations spent.
  double MinDivergenceFrom(const simplex::TopicVector& q,
                           size_t* kl_evaluations = nullptr) const;

  /// Resolves the Eq. 5 test "min_{x ∈ B} D_KL(x ‖ q) < δ" with early
  /// bisection exit: returns true when the subtree can be pruned
  /// (min ≥ δ). δ = +inf never prunes.
  bool CanPrune(const simplex::TopicVector& q, double delta,
                size_t* kl_evaluations = nullptr) const;

 private:
  simplex::TopicVector center_;
  double radius_ = 0.0;
};

}  // namespace bbtree
}  // namespace inflex

#endif  // INFLEX_BBTREE_BREGMAN_BALL_H_
