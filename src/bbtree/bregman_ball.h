#ifndef INFLEX_BBTREE_BREGMAN_BALL_H_
#define INFLEX_BBTREE_BREGMAN_BALL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simplex/kl_kernel.h"
#include "simplex/topic_distribution.h"

namespace inflex {
namespace bbtree {

/// \brief Instrumentation shared by all search procedures; the paper reports
/// KL-evaluation counts and leaves visited for Figure 5 and the early-stop
/// analysis. `kl_ns` adds wall time spent inside the KL kernel regions
/// (leaf scans, descent batches, bisection projections) so the kernel share
/// of a query is measurable end to end.
struct SearchStats {
  size_t kl_evaluations = 0;
  size_t leaves_visited = 0;
  size_t nodes_visited = 0;
  size_t subtrees_pruned = 0;
  /// Nanoseconds spent in KL kernel evaluation regions.
  uint64_t kl_ns = 0;
};

/// \brief Reusable buffers for the Eq. 5 bisection (geodesic point and its
/// log-mixture coordinates). Owned by a SearchContext so repeated pruning
/// tests never allocate.
struct BisectionScratch {
  std::vector<double> x;  ///< normalized geodesic point x_λ
  std::vector<double> u;  ///< log-mixture (1−λ)·log q̂ + λ·log μ̂
};

/// \brief A Bregman ball under the KL generator (Eq. 4):
/// B(μ, R) = { x : D_KL(x ‖ μ) ≤ R }.
///
/// Provides the pruning primitive of the INFLEX search (Eq. 5): a sound
/// lower bound on min_{x ∈ B} D_KL(x ‖ q), computed by projecting the query
/// onto the ball with Cayton's bisection along the dual geodesic
///   x_λ = ∇f*((1−λ)·∇f(q) + λ·∇f(μ)),
/// which for the KL generator on the simplex is the normalized geometric
/// mixture x_λ ∝ q^{1−λ} μ^λ. The primal (inside the ball) and dual
/// (outside) endpoints of the bisection bracket yield upper and lower bounds
/// that allow early termination as soon as the δ-comparison is resolved.
///
/// Kernel caches: construction precomputes log(max(μ_z, eps)) and −H(μ), so
/// every divergence the bisection needs reduces to dot products against the
/// per-query KlQueryContext (the geodesic point's own entropy falls out of
/// the log-mixture without further log calls; see DESIGN.md §10).
class BregmanBall {
 public:
  BregmanBall() = default;
  BregmanBall(simplex::TopicVector center, double radius);

  const simplex::TopicVector& center() const { return center_; }
  double radius() const { return radius_; }

  /// Grows the radius to at least `radius` (online Insert's conservative
  /// ball enlargement). The center and its kernel caches are untouched.
  void EnlargeRadius(double radius);

  /// −H(μ) = Σ μ_z·log μ_z, cached at construction.
  double center_neg_entropy() const { return neg_entropy_; }
  /// log(max(μ_z, kKlSmoothingEps)), cached at construction.
  const std::vector<double>& log_center() const { return log_center_; }

  /// True when x lies in the ball: D_KL(x ‖ center) ≤ radius (+slack).
  bool Contains(const simplex::TopicVector& x, double slack = 1e-12) const;

  /// Lower bound on min_{x ∈ B} D_KL(x ‖ q). Exact up to bisection
  /// tolerance; always ≤ the true minimum. `stats` (optional) accumulates
  /// kl_evaluations and kernel time.
  double MinDivergenceFrom(const simplex::KlQueryContext& query,
                           BisectionScratch* scratch,
                           SearchStats* stats = nullptr) const;

  /// Resolves the Eq. 5 test "min_{x ∈ B} D_KL(x ‖ q) < δ" with early
  /// bisection exit: returns true when the subtree can be pruned
  /// (min ≥ δ). δ = +inf never prunes.
  bool CanPrune(const simplex::KlQueryContext& query, double delta,
                BisectionScratch* scratch, SearchStats* stats = nullptr) const;

  /// Both pruning primitives split into a *screen* — the single evaluation
  /// D_KL(q ‖ μ); if it is ≤ R the query is inside the ball and the bound is
  /// 0 — and a per-ball geodesic-bisection *refinement*. The screen depends
  /// only on (query, ball), so a search can precompute it for a whole
  /// frontier in one batched kernel sweep (BbTree::ScreenBalls) and pass it
  /// here via `div_q_center`. With a screen value bit-equal to
  /// query.KlOfQueryAgainst(log_center()), these return exactly what the
  /// unscreened methods return; only the screen evaluation itself (already
  /// counted by the batch sweep) is skipped here.
  double MinDivergenceScreened(const simplex::KlQueryContext& query,
                               double div_q_center, BisectionScratch* scratch,
                               SearchStats* stats = nullptr) const;
  bool CanPruneScreened(const simplex::KlQueryContext& query,
                        double div_q_center, double delta,
                        BisectionScratch* scratch,
                        SearchStats* stats = nullptr) const;

  /// Convenience overloads building a context/scratch per call (tests and
  /// cold paths; the searches pass their per-query context instead).
  double MinDivergenceFrom(const simplex::TopicVector& q,
                           size_t* kl_evaluations = nullptr) const;
  bool CanPrune(const simplex::TopicVector& q, double delta,
                size_t* kl_evaluations = nullptr) const;

 private:
  simplex::TopicVector center_;
  std::vector<double> log_center_;  // log(max(center, eps))
  double neg_entropy_ = 0.0;        // Σ center_z·log center_z
  double radius_ = 0.0;
};

}  // namespace bbtree
}  // namespace inflex

#endif  // INFLEX_BBTREE_BREGMAN_BALL_H_
