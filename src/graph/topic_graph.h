#ifndef INFLEX_GRAPH_TOPIC_GRAPH_H_
#define INFLEX_GRAPH_TOPIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "simplex/topic_distribution.h"
#include "util/check.h"
#include "util/status.h"

namespace inflex {
namespace graph {

using NodeId = uint32_t;
using ArcId = uint32_t;

/// Item-specific arc probabilities (one double per arc, aligned with the
/// graph's forward arc ids). This is what Eq. 1 materializes and what the
/// influence-maximization substrate consumes.
using ArcProbabilities = std::vector<double>;

/// \brief Immutable directed social graph in CSR form whose arcs carry one
/// influence probability per topic: p^z_{u,v} for z ∈ [0, Z).
///
/// Layout (cache-friendly for cascade simulation):
///  - `out_offsets_[u] .. out_offsets_[u+1]` indexes `out_targets_` /
///    per-arc probability rows (arc id = position in `out_targets_`).
///  - a reverse CSR (`in_*`) supports the TIC learner, which must enumerate
///    a node's potential influencers; `in_arc_ids_` maps each reverse slot
///    back to the forward arc id so probabilities are stored once.
class TopicGraph {
 public:
  TopicGraph() = default;

  size_t num_nodes() const { return num_nodes_; }
  size_t num_arcs() const { return out_targets_.size(); }
  size_t num_topics() const { return num_topics_; }

  /// Out-degree of node u.
  size_t OutDegree(NodeId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  /// In-degree of node v.
  size_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// First forward arc id of node u (arcs of u are contiguous).
  ArcId OutArcBegin(NodeId u) const {
    return static_cast<ArcId>(out_offsets_[u]);
  }

  /// Targets of node u's out-arcs.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u], OutDegree(u)};
  }

  /// Sources of node v's in-arcs.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return {in_sources_.data() + in_offsets_[v], InDegree(v)};
  }

  /// Forward arc ids of node v's in-arcs, aligned with InNeighbors(v).
  std::span<const ArcId> InArcIds(NodeId v) const {
    return {in_arc_ids_.data() + in_offsets_[v], InDegree(v)};
  }

  /// Target of forward arc `a`.
  NodeId ArcTarget(ArcId a) const { return out_targets_[a]; }

  /// Influence probability of forward arc `a` on topic z.
  double ArcTopicProb(ArcId a, size_t z) const {
    return arc_topic_probs_[static_cast<size_t>(a) * num_topics_ + z];
  }

  /// All Z probabilities of forward arc `a`.
  std::span<const double> ArcTopicProbs(ArcId a) const {
    return {arc_topic_probs_.data() + static_cast<size_t>(a) * num_topics_,
            num_topics_};
  }

  /// Materializes the item-specific IC instance of Eq. 1:
  /// p_{u,v} = Σ_z γ_z · p^z_{u,v} for every arc.
  ArcProbabilities ItemArcProbabilities(
      const simplex::TopicDistribution& item) const;

  /// As above but writes into a caller-owned buffer (resized to num_arcs());
  /// lets the index builder reuse one allocation across many items.
  void ItemArcProbabilitiesInto(const simplex::TopicDistribution& item,
                                ArcProbabilities* out) const;

  /// Replaces every arc's probability row. `probs` must be
  /// num_arcs() × num_topics(), arc-major. Used by the TIC learner to load
  /// learned parameters back into the graph.
  Status SetArcTopicProbabilities(std::vector<double> probs);

 private:
  friend class TopicGraphBuilder;
  friend Status SaveTopicGraph(const TopicGraph&, const std::string&);
  friend Result<TopicGraph> LoadTopicGraph(const std::string&);

  size_t num_nodes_ = 0;
  size_t num_topics_ = 0;
  std::vector<uint64_t> out_offsets_;   // size n+1
  std::vector<NodeId> out_targets_;     // size m
  std::vector<double> arc_topic_probs_;  // size m*Z, arc-major
  std::vector<uint64_t> in_offsets_;    // size n+1
  std::vector<NodeId> in_sources_;      // size m
  std::vector<ArcId> in_arc_ids_;       // size m
};

/// \brief Accumulates arcs and produces a validated TopicGraph.
class TopicGraphBuilder {
 public:
  /// A graph over `num_nodes` nodes and `num_topics` topics per arc.
  TopicGraphBuilder(size_t num_nodes, size_t num_topics);

  /// Adds the arc u→v with one probability per topic. Fails on out-of-range
  /// endpoints, self-loops, wrong probability count, or values outside
  /// [0, 1].
  Status AddArc(NodeId u, NodeId v, const std::vector<double>& topic_probs);

  size_t num_arcs_added() const { return sources_.size(); }

  /// Sorts arcs, rejects duplicates, and builds both CSR directions.
  Result<TopicGraph> Build();

 private:
  size_t num_nodes_;
  size_t num_topics_;
  std::vector<NodeId> sources_;
  std::vector<NodeId> targets_;
  std::vector<double> probs_;
};

}  // namespace graph
}  // namespace inflex

#endif  // INFLEX_GRAPH_TOPIC_GRAPH_H_
