#ifndef INFLEX_GRAPH_GRAPH_IO_H_
#define INFLEX_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/topic_graph.h"
#include "util/status.h"

namespace inflex {
namespace graph {

/// Persists a TopicGraph to a versioned binary artifact.
Status SaveTopicGraph(const TopicGraph& g, const std::string& path);

/// Loads a TopicGraph previously written by SaveTopicGraph.
Result<TopicGraph> LoadTopicGraph(const std::string& path);

/// Writes a human-readable edge list: one line per arc,
/// `u v p_1 p_2 ... p_Z`, preceded by a `# nodes topics` header line.
Status WriteEdgeList(const TopicGraph& g, const std::string& path);

/// Parses the edge-list format produced by WriteEdgeList.
Result<TopicGraph> ReadEdgeList(const std::string& path);

}  // namespace graph
}  // namespace inflex

#endif  // INFLEX_GRAPH_GRAPH_IO_H_
