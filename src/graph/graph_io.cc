#include "graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/serialize.h"

namespace inflex {
namespace graph {

namespace {
constexpr uint32_t kGraphMagic = 0x494e4758;  // "INGX"
constexpr uint32_t kGraphVersion = 1;
}  // namespace

Status SaveTopicGraph(const TopicGraph& g, const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kGraphMagic, kGraphVersion));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(g.num_nodes_));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(g.num_topics_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.out_offsets_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.out_targets_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.arc_topic_probs_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.in_offsets_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.in_sources_));
  INFLEX_RETURN_NOT_OK(w.WriteVector(g.in_arc_ids_));
  return w.Close();
}

Result<TopicGraph> LoadTopicGraph(const std::string& path) {
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kGraphMagic, kGraphVersion));
  TopicGraph g;
  uint64_t n = 0, z = 0;
  INFLEX_RETURN_NOT_OK(r.ReadPod(&n));
  INFLEX_RETURN_NOT_OK(r.ReadPod(&z));
  g.num_nodes_ = n;
  g.num_topics_ = z;
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.out_offsets_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.out_targets_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.arc_topic_probs_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.in_offsets_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.in_sources_));
  INFLEX_RETURN_NOT_OK(r.ReadVector(&g.in_arc_ids_));
  // Structural sanity before handing the graph to cascade code.
  if (g.out_offsets_.size() != n + 1 || g.in_offsets_.size() != n + 1 ||
      g.out_targets_.size() * z != g.arc_topic_probs_.size() ||
      g.in_sources_.size() != g.out_targets_.size() ||
      g.in_arc_ids_.size() != g.out_targets_.size()) {
    return Status::IOError("inconsistent graph artifact: " + path);
  }
  return g;
}

Status WriteEdgeList(const TopicGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "# " << g.num_nodes() << " " << g.num_topics() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ArcId a = g.OutArcBegin(u);
    for (NodeId v : g.OutNeighbors(u)) {
      out << u << " " << v;
      for (double p : g.ArcTopicProbs(a)) out << " " << p;
      out << "\n";
      ++a;
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<TopicGraph> ReadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty edge list");
  uint64_t n = 0, z = 0;
  {
    std::istringstream hdr(line);
    char hash = 0;
    if (!(hdr >> hash >> n >> z) || hash != '#') {
      return Status::IOError("edge list missing '# nodes topics' header");
    }
  }
  if (n == 0 || z == 0) return Status::IOError("edge list header invalid");
  TopicGraphBuilder builder(n, z);
  std::vector<double> probs(z);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      return Status::IOError("bad edge at line " + std::to_string(line_no));
    }
    for (size_t k = 0; k < z; ++k) {
      if (!(ls >> probs[k])) {
        return Status::IOError("missing probability at line " +
                               std::to_string(line_no));
      }
    }
    INFLEX_RETURN_NOT_OK(builder.AddArc(static_cast<NodeId>(u),
                                        static_cast<NodeId>(v), probs));
  }
  return builder.Build();
}

}  // namespace graph
}  // namespace inflex
