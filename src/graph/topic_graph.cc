#include "graph/topic_graph.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace inflex {
namespace graph {

ArcProbabilities TopicGraph::ItemArcProbabilities(
    const simplex::TopicDistribution& item) const {
  ArcProbabilities out;
  ItemArcProbabilitiesInto(item, &out);
  return out;
}

void TopicGraph::ItemArcProbabilitiesInto(
    const simplex::TopicDistribution& item, ArcProbabilities* out) const {
  INFLEX_CHECK_EQ(item.num_topics(), num_topics_);
  const size_t m = num_arcs();
  out->resize(m);
  const double* probs = arc_topic_probs_.data();
  const double* gamma = item.probs().data();
  const size_t z_count = num_topics_;
  for (size_t a = 0; a < m; ++a) {
    double p = 0.0;
    const double* row = probs + a * z_count;
    for (size_t z = 0; z < z_count; ++z) p += gamma[z] * row[z];
    (*out)[a] = p;
  }
}

Status TopicGraph::SetArcTopicProbabilities(std::vector<double> probs) {
  if (probs.size() != num_arcs() * num_topics_) {
    return Status::InvalidArgument(
        "probability table size mismatch: expected num_arcs * num_topics");
  }
  for (double p : probs) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("arc probability outside [0, 1]");
    }
  }
  arc_topic_probs_ = std::move(probs);
  return Status::OK();
}

TopicGraphBuilder::TopicGraphBuilder(size_t num_nodes, size_t num_topics)
    : num_nodes_(num_nodes), num_topics_(num_topics) {
  INFLEX_CHECK_GT(num_nodes, 0u);
  INFLEX_CHECK_GT(num_topics, 0u);
}

Status TopicGraphBuilder::AddArc(NodeId u, NodeId v,
                                 const std::vector<double>& topic_probs) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    return Status::OutOfRange("arc endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (topic_probs.size() != num_topics_) {
    return Status::InvalidArgument("expected one probability per topic");
  }
  for (double p : topic_probs) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("arc probability outside [0, 1]");
    }
  }
  sources_.push_back(u);
  targets_.push_back(v);
  probs_.insert(probs_.end(), topic_probs.begin(), topic_probs.end());
  return Status::OK();
}

Result<TopicGraph> TopicGraphBuilder::Build() {
  const size_t m = sources_.size();

  // Sort arcs by (source, target) via an index permutation.
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    if (sources_[a] != sources_[b]) return sources_[a] < sources_[b];
    return targets_[a] < targets_[b];
  });
  for (size_t i = 1; i < m; ++i) {
    const uint32_t a = order[i - 1], b = order[i];
    if (sources_[a] == sources_[b] && targets_[a] == targets_[b]) {
      return Status::InvalidArgument("duplicate arc " +
                                     std::to_string(sources_[a]) + "->" +
                                     std::to_string(targets_[a]));
    }
  }

  TopicGraph g;
  g.num_nodes_ = num_nodes_;
  g.num_topics_ = num_topics_;
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.out_targets_.resize(m);
  g.arc_topic_probs_.resize(m * num_topics_);

  for (size_t i = 0; i < m; ++i) {
    g.out_offsets_[sources_[order[i]] + 1]++;
  }
  for (size_t u = 0; u < num_nodes_; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  for (size_t i = 0; i < m; ++i) {
    const uint32_t src_idx = order[i];
    g.out_targets_[i] = targets_[src_idx];
    std::copy_n(probs_.begin() + static_cast<size_t>(src_idx) * num_topics_,
                num_topics_, g.arc_topic_probs_.begin() + i * num_topics_);
  }

  // Reverse CSR.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  g.in_sources_.resize(m);
  g.in_arc_ids_.resize(m);
  for (size_t a = 0; a < m; ++a) {
    g.in_offsets_[g.out_targets_[a] + 1]++;
  }
  for (size_t v = 0; v < num_nodes_; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  std::vector<uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (size_t u = 0; u < num_nodes_; ++u) {
    for (uint64_t a = g.out_offsets_[u]; a < g.out_offsets_[u + 1]; ++a) {
      const NodeId v = g.out_targets_[a];
      const uint64_t slot = cursor[v]++;
      g.in_sources_[slot] = static_cast<NodeId>(u);
      g.in_arc_ids_[slot] = static_cast<ArcId>(a);
    }
  }
  return g;
}

}  // namespace graph
}  // namespace inflex
