#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace inflex {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string ServerStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "net: %llu conns | %llu req, %llu resp | %llu ok, %llu failed | "
      "%llu shed, %llu expired, %llu draining | %llu deltas (%llu deferred) | "
      "%llu malformed | queue %zu (peak %zu)",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(requests_received),
      static_cast<unsigned long long>(responses_sent),
      static_cast<unsigned long long>(queries_ok),
      static_cast<unsigned long long>(queries_failed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(rejected_draining),
      static_cast<unsigned long long>(deltas_submitted),
      static_cast<unsigned long long>(deltas_deferred),
      static_cast<unsigned long long>(malformed), queue_depth,
      queue_depth_peak);
  return std::string(buf);
}

InflexServer::InflexServer(core::QueryEngine* engine,
                           const InflexServerOptions& options)
    : engine_(engine), options_(options) {
  INFLEX_CHECK(engine_ != nullptr);
  if (options_.io_threads == 0) options_.io_threads = 1;
  options_.io_threads = std::min(options_.io_threads, kMaxIoThreads);
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_worker_batch == 0) options_.max_worker_batch = 1;
  if (options_.queue_high_watermark == 0) options_.queue_high_watermark = 1;
  low_watermark_ = options_.queue_low_watermark != 0
                       ? options_.queue_low_watermark
                       : options_.queue_high_watermark / 2;
  if (low_watermark_ >= options_.queue_high_watermark) {
    low_watermark_ = options_.queue_high_watermark - 1;
  }
}

InflexServer::~InflexServer() { Stop(); }

Status InflexServer::OpenListenSocket(uint16_t port, bool reuse_port,
                                      int* out_fd, uint16_t* out_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    // Must be set before bind on EVERY socket sharing the port, including
    // the first: the kernel only admits a second binder when the first also
    // opted in.
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      Status s = Status::IOError(std::string("setsockopt(SO_REUSEPORT): ") +
                                 std::strerror(errno));
      ::close(fd);
      return s;
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string host = options_.bind_address;
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError(std::string("bind ") + host + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) < 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0) {
    *out_port = ntohs(addr.sin_port);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  *out_fd = fd;
  return Status::OK();
}

Status InflexServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("InflexServer::Start called twice");
  }

  const size_t num_loops = options_.io_threads;
  const bool reuse_port = num_loops > 1;
  io_loops_.reserve(num_loops);
  auto cleanup = [this] {
    for (auto& loop : io_loops_) {
      if (loop->listen_fd >= 0) ::close(loop->listen_fd);
      if (loop->wake_pipe[0] >= 0) ::close(loop->wake_pipe[0]);
      if (loop->wake_pipe[1] >= 0) ::close(loop->wake_pipe[1]);
    }
    io_loops_.clear();
  };
  for (size_t i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<IoLoopState>();
    loop->index = i;
    // Loop 0 resolves the port (possibly ephemeral); the rest bind the same
    // resolved port and the kernel shards accepts across the group.
    const uint16_t bind_port = i == 0 ? options_.port : bound_port_;
    uint16_t resolved_port = 0;
    Status s = OpenListenSocket(bind_port, reuse_port, &loop->listen_fd,
                                &resolved_port);
    if (s.ok() && i == 0) bound_port_ = resolved_port;
    if (!s.ok()) {
      cleanup();
      return s;
    }
    if (::pipe(loop->wake_pipe) != 0) {
      Status ps = Status::IOError(std::string("pipe: ") + std::strerror(errno));
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
      io_loops_.push_back(std::move(loop));
      cleanup();
      return ps;
    }
    for (int end : {0, 1}) {
      Status nb = SetNonBlocking(loop->wake_pipe[end]);
      if (!nb.ok()) {
        io_loops_.push_back(std::move(loop));
        cleanup();
        return nb;
      }
    }
    io_loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_release);
  for (auto& loop : io_loops_) {
    IoLoopState* raw = loop.get();
    raw->thread = std::thread([this, raw] { IoLoop(raw); });
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void InflexServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Stop accepting; new query/delta requests get kShuttingDown.
  draining_.store(true, std::memory_order_release);
  WakeAllLoops();

  // 2. Wait for the admission queue to drain and every worker to go idle —
  // in-flight requests complete with real answers.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_drained_.wait(lock,
                        [this] { return queue_.empty() && busy_workers_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // 3. Bounded flush: wait for the IO loops to route every completion and
  // push the bytes out to (possibly slow) clients.
  Timer drain_timer;
  while (drain_timer.ElapsedMillis() < options_.drain_timeout_ms &&
         (responses_outstanding_.load(std::memory_order_acquire) > 0 ||
          pending_write_bytes_.load(std::memory_order_acquire) > 0)) {
    WakeAllLoops();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Tear the IO loops down; each closes its sockets on exit.
  io_stop_.store(true, std::memory_order_release);
  WakeAllLoops();
  for (auto& loop : io_loops_) {
    loop->thread.join();
    ::close(loop->wake_pipe[0]);
    ::close(loop->wake_pipe[1]);
    loop->wake_pipe[0] = loop->wake_pipe[1] = -1;
  }

  // 5. Quiesce the maintenance plane last: every delta acknowledged over the
  // wire is published (or superseded) before Stop() returns. In multi-tenant
  // mode every registered tenant's pipeline drains.
  if (options_.router != nullptr) {
    for (const auto& t : options_.router->registry()->List()) t->Drain();
  } else if (options_.maintainer != nullptr) {
    options_.maintainer->Drain();
  }

  running_.store(false, std::memory_order_release);
}

ServerStats InflexServer::stats() const {
  ServerStats out;
  out.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  out.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  out.requests_received =
      counters_.requests_received.load(std::memory_order_relaxed);
  out.responses_sent = counters_.responses_sent.load(std::memory_order_relaxed);
  out.queries_ok = counters_.queries_ok.load(std::memory_order_relaxed);
  out.queries_failed = counters_.queries_failed.load(std::memory_order_relaxed);
  out.deltas_submitted =
      counters_.deltas_submitted.load(std::memory_order_relaxed);
  out.shed = counters_.shed.load(std::memory_order_relaxed);
  out.deltas_deferred =
      counters_.deltas_deferred.load(std::memory_order_relaxed);
  out.deadline_expired =
      counters_.deadline_expired.load(std::memory_order_relaxed);
  out.malformed = counters_.malformed.load(std::memory_order_relaxed);
  out.rejected_draining =
      counters_.rejected_draining.load(std::memory_order_relaxed);
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  return out;
}

void InflexServer::WakeLoop(IoLoopState* loop) {
  char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = ::write(loop->wake_pipe[1], &b, 1);
}

void InflexServer::WakeAllLoops() {
  for (auto& loop : io_loops_) WakeLoop(loop.get());
}

void InflexServer::PublishQueueDepth(size_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  size_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  engine_->ReportAdmissionQueue(depth);
}

// ---------------------------------------------------------------------------
// IO loops
// ---------------------------------------------------------------------------

void InflexServer::IoLoop(IoLoopState* loop) {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd (0 = not a conn)

  while (!io_stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({loop->wake_pipe[0], POLLIN, 0});
    pfd_conn.push_back(0);
    const bool accepting = !draining_.load(std::memory_order_acquire);
    if (!accepting && loop->listen_fd >= 0) {
      // Close the listen socket the moment draining starts: connects must
      // fail fast instead of completing into the kernel backlog where no
      // one will ever read them.
      ::close(loop->listen_fd);
      loop->listen_fd = -1;
    }
    if (accepting) {
      pfds.push_back({loop->listen_fd, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : loop->connections) {
      short events = conn->saw_eof ? 0 : POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn.push_back(id);
    }

    ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);

    if (pfds[0].revents & POLLIN) {
      char drain[256];
      while (::read(loop->wake_pipe[0], drain, sizeof(drain)) > 0) {
      }
    }

    DrainCompletions(loop);

    size_t idx = 1;
    if (accepting) {
      if (pfds[idx].revents & POLLIN) AcceptNew(loop);
      ++idx;
    }
    for (; idx < pfds.size(); ++idx) {
      uint64_t id = pfd_conn[idx];
      auto it = loop->connections.find(id);
      if (it == loop->connections.end()) continue;
      Connection* conn = it->second.get();
      if (pfds[idx].revents & (POLLERR | POLLNVAL)) conn->broken = true;
      if (!conn->broken && (pfds[idx].revents & (POLLIN | POLLHUP))) {
        ReadFrom(conn);  // POLLHUP still delivers buffered bytes, then EOF
      }
      if (!conn->broken && (pfds[idx].revents & POLLOUT)) {
        FlushConnection(conn);
      }
    }
    // Sweep closures last so no helper above ever holds a dangling pointer.
    std::vector<uint64_t> to_close;
    for (auto& [id, conn] : loop->connections) {
      if (conn->broken ||
          (conn->close_after_flush && conn->woff >= conn->wbuf.size() &&
           conn->parked.empty() && conn->next_seq_out == conn->next_seq_in)) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConnection(loop, id);
  }

  // Shutdown: route any last completions, attempt one final flush, close.
  DrainCompletions(loop);
  std::vector<uint64_t> ids;
  ids.reserve(loop->connections.size());
  for (auto& [id, conn] : loop->connections) {
    FlushConnection(conn.get());
    ids.push_back(id);
  }
  for (uint64_t id : ids) CloseConnection(loop, id);
  if (loop->listen_fd >= 0) {
    ::close(loop->listen_fd);
    loop->listen_fd = -1;
  }
}

void InflexServer::AcceptNew(IoLoopState* loop) {
  while (true) {
    int fd = ::accept(loop->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      INFLEX_LOG(Warning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = (static_cast<uint64_t>(loop->index) << kConnIdLoopShift) |
               loop->next_conn_id++;
    uint64_t id = conn->id;
    loop->connections.emplace(id, std::move(conn));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void InflexServer::CloseConnection(IoLoopState* loop, uint64_t conn_id) {
  auto it = loop->connections.find(conn_id);
  if (it == loop->connections.end()) return;
  Connection* conn = it->second.get();
  // Whatever never made it to the socket is abandoned with the peer.
  size_t unsent = conn->wbuf.size() - conn->woff;
  if (unsent > 0) {
    pending_write_bytes_.fetch_sub(unsent, std::memory_order_acq_rel);
  }
  ::close(conn->fd);
  loop->connections.erase(it);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void InflexServer::ReadFrom(Connection* conn) {
  uint8_t chunk[16 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (n == 0) {  // peer closed its write side; flush and close
      conn->saw_eof = true;
      conn->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    conn->broken = true;
    return;
  }

  size_t off = 0;
  while (true) {
    std::span<const uint8_t> rest(conn->rbuf.data() + off,
                                  conn->rbuf.size() - off);
    size_t frame_bytes = 0;
    Status peek = PeekFrame(rest, &frame_bytes);
    if (!peek.ok()) {
      // Length prefix itself is garbage: the stream cannot be resynced.
      counters_.malformed.fetch_add(1, std::memory_order_relaxed);
      WireResponse resp;
      resp.status = WireStatus::kMalformed;
      resp.message = peek.message();
      RespondNow(conn, conn->next_seq_in++, resp);
      conn->close_after_flush = true;
      conn->rbuf.clear();
      return;
    }
    if (frame_bytes == 0 || rest.size() < frame_bytes) break;
    HandleFrame(conn,
                rest.subspan(kFrameHeaderBytes, frame_bytes - kFrameHeaderBytes));
    off += frame_bytes;
    if (conn->close_after_flush) break;  // stop parsing a poisoned stream
  }
  if (off > 0) conn->rbuf.erase(conn->rbuf.begin(), conn->rbuf.begin() + off);
}

void InflexServer::HandleFrame(Connection* conn,
                               std::span<const uint8_t> payload) {
  const uint64_t seq = conn->next_seq_in++;
  counters_.requests_received.fetch_add(1, std::memory_order_relaxed);

  Result<WireRequest> decoded = DecodeRequestPayload(payload);
  if (!decoded.ok()) {
    counters_.malformed.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.status = WireStatus::kMalformed;
    resp.message = decoded.status().message();
    RespondNow(conn, seq, resp);
    conn->close_after_flush = true;
    return;
  }
  WireRequest request = std::move(decoded).ValueOrDie();

  // Tenant resolution happens before anything request-type specific: every
  // answer (including ping epochs) must come from the tenant's own catalog.
  std::shared_ptr<tenant::Tenant> resolved;
  if (options_.router != nullptr) {
    resolved = options_.router->registry()->Resolve(request.tenant);
    if (resolved == nullptr) {
      WireResponse resp;
      resp.status = WireStatus::kInvalidRequest;
      resp.message = "unknown tenant '" + request.tenant + "'";
      RespondNow(conn, seq, resp);
      return;
    }
  } else if (!request.tenant.empty() &&
             request.tenant != tenant::kDefaultTenantId) {
    // Single-tenant server: serving a named tenant from the only catalog
    // would silently cross catalogs, so reject instead.
    WireResponse resp;
    resp.status = WireStatus::kInvalidRequest;
    resp.message = "server is not multi-tenant (tenant '" + request.tenant +
                   "' requested)";
    RespondNow(conn, seq, resp);
    return;
  }

  if (request.type == MessageType::kPing) {
    WireResponse resp;
    resp.epoch = EngineFor(resolved)->index_epoch();
    RespondNow(conn, seq, resp);
    return;
  }

  if (draining_.load(std::memory_order_acquire)) {
    counters_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.status = WireStatus::kShuttingDown;
    resp.message = "server is draining";
    RespondNow(conn, seq, resp);
    return;
  }

  if (request.type == MessageType::kDelta) {
    RespondNow(conn, seq, HandleDelta(request, resolved));
    return;
  }

  // kQuery. Per-tenant budget first: a tenant that burned its token bucket
  // is shed here, before it can occupy a slot in the shared admission queue.
  if (resolved != nullptr &&
      !options_.router->AdmitQuery(resolved.get())) {
    counters_.shed.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.status = WireStatus::kOverloaded;
    resp.retry_after_ms = options_.retry_after_ms;
    resp.epoch = resolved->engine()->index_epoch();
    resp.message = "tenant query budget exhausted";
    RespondNow(conn, seq, resp);
    return;
  }

  WireResponse reject;
  reject.status = WireStatus::kInvalidRequest;
  if (request.k == 0) {
    reject.message = "k must be >= 1";
    RespondNow(conn, seq, reject);
    return;
  }
  Result<simplex::TopicDistribution> item =
      simplex::TopicDistribution::Create(std::move(request.gamma));
  if (!item.ok()) {
    reject.message = "bad query mixture: " + item.status().message();
    RespondNow(conn, seq, reject);
    return;
  }

  PendingRequest pending;
  pending.conn_id = conn->id;
  pending.seq = seq;
  pending.query.item = std::move(item).ValueOrDie();
  pending.query.k = request.k;
  pending.query.options = request.ToQueryOptions();
  pending.deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                                 : options_.default_deadline_ms;
  pending.tenant = resolved;
  core::QueryEngine* pending_engine = EngineFor(resolved);

  std::vector<Completion> expired;
  const bool admitted = TryAdmit(std::move(pending), &expired);

  // Expired entries drained from the queue front may belong to any
  // connection on ANY loop; route them like worker completions (the owning
  // loop drains them on its next wakeup — including this loop itself).
  if (!expired.empty()) RouteCompletions(std::move(expired));

  if (!admitted) {
    WireResponse resp;
    resp.status = WireStatus::kOverloaded;
    resp.retry_after_ms = options_.retry_after_ms;
    resp.epoch = pending_engine->index_epoch();
    resp.message = "admission queue over high-water mark";
    RespondNow(conn, seq, resp);
  }
}

WireResponse InflexServer::HandleDelta(
    const WireRequest& request,
    const std::shared_ptr<tenant::Tenant>& tenant) {
  WireResponse resp;
  resp.epoch = EngineFor(tenant)->index_epoch();
  core::IndexMaintainer* maintainer =
      tenant != nullptr ? tenant->maintainer() : options_.maintainer;
  if (maintainer == nullptr) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = tenant != nullptr
                       ? "tenant '" + tenant->id() + "' has no maintenance plane"
                       : "server has no maintenance plane";
    return resp;
  }
  Result<simplex::TopicDistribution> item =
      simplex::TopicDistribution::Create(request.gamma);
  if (!item.ok()) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = "bad delta mixture: " + item.status().message();
    return resp;
  }
  if (tenant != nullptr) tenant->RecordDeltaRouted();
  core::CatalogDelta delta;
  delta.id = request.delta_id;
  delta.item = std::move(item).ValueOrDie();
  Result<core::DeltaReceipt> receipt = maintainer->SubmitDelta(delta);
  if (!receipt.ok()) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = receipt.status().message();
    return resp;
  }
  const core::DeltaReceipt& r = receipt.ValueOrDie();
  resp.delta_outcome = static_cast<uint16_t>(r.outcome) + 1;
  if (r.outcome == core::DeltaOutcome::kRetryLater) {
    // The tenant's pending_high_watermark is its bounded delta queue: the
    // bounce degrades only the tenant that filled it.
    resp.status = WireStatus::kOverloaded;
    resp.retry_after_ms = options_.retry_after_ms;
    resp.message = "maintenance plane over high-water mark";
    counters_.deltas_deferred.fetch_add(1, std::memory_order_relaxed);
    if (tenant != nullptr) tenant->RecordDeltaDeferred();
  } else {
    counters_.deltas_submitted.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

void InflexServer::RespondNow(Connection* conn, uint64_t seq,
                              const WireResponse& resp) {
  conn->parked.emplace(seq, EncodeResponseFrame(resp));
  FlushConnection(conn);
}

void InflexServer::FlushConnection(Connection* conn) {
  // Append every response whose turn has come (per-request order).
  while (true) {
    auto it = conn->parked.find(conn->next_seq_out);
    if (it == conn->parked.end()) break;
    conn->wbuf.insert(conn->wbuf.end(), it->second.begin(), it->second.end());
    pending_write_bytes_.fetch_add(it->second.size(),
                                   std::memory_order_acq_rel);
    conn->parked.erase(it);
    ++conn->next_seq_out;
    counters_.responses_sent.fetch_add(1, std::memory_order_relaxed);
  }
  // Push what the socket will take.
  while (conn->woff < conn->wbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                       conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      pending_write_bytes_.fetch_sub(static_cast<size_t>(n),
                                     std::memory_order_acq_rel);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      break;  // poll will report POLLOUT
    }
    conn->broken = true;
    return;
  }
  if (conn->woff == conn->wbuf.size() && conn->woff > 0) {
    conn->wbuf.clear();
    conn->woff = 0;
  }
}

void InflexServer::DrainCompletions(IoLoopState* loop) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(loop->completions_mu);
    batch.swap(loop->completions);
  }
  for (Completion& c : batch) {
    auto it = loop->connections.find(c.conn_id);
    if (it != loop->connections.end()) {
      Connection* conn = it->second.get();
      conn->parked.emplace(c.seq, std::move(c.frame));
      FlushConnection(conn);
    }
    responses_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void InflexServer::RouteCompletions(std::vector<Completion> completions) {
  if (completions.empty()) return;
  responses_outstanding_.fetch_add(completions.size(),
                                   std::memory_order_acq_rel);
  // One pass per loop that actually has traffic: the common case (a worker
  // batch from a handful of connections) touches one or two loop queues.
  const size_t num_loops = io_loops_.size();
  for (size_t l = 0; l < num_loops; ++l) {
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(io_loops_[l]->completions_mu);
      for (Completion& c : completions) {
        if (!c.frame.empty() && LoopOf(c.conn_id) == l) {
          io_loops_[l]->completions.push_back(std::move(c));
          c.frame.clear();  // claimed marker
          any = true;
        }
      }
    }
    if (any) WakeLoop(io_loops_[l].get());
  }
  // Completions addressed to an out-of-range loop cannot happen (conn ids
  // are minted from loop indices), but keep the invariant airtight: drop
  // any unclaimed entry and give its outstanding-count back.
  size_t unclaimed = 0;
  for (const Completion& c : completions) {
    if (!c.frame.empty()) ++unclaimed;
  }
  if (unclaimed > 0) {
    responses_outstanding_.fetch_sub(unclaimed, std::memory_order_acq_rel);
  }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

bool InflexServer::TryAdmit(PendingRequest pending,
                            std::vector<Completion>* expired) {
  core::QueryEngine* pending_engine = EngineFor(pending.tenant);
  uint64_t expired_count = 0;
  bool shed_this = false;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shedding_ && queue_.size() <= low_watermark_) shedding_ = false;
    if (queue_.size() >= options_.queue_high_watermark) {
      // The front has waited longest: expire it first, shed only if the
      // queue is still saturated with live requests.
      while (queue_.size() >= options_.queue_high_watermark &&
             !queue_.empty() && queue_.front().deadline_ms > 0 &&
             queue_.front().enqueued.ElapsedMillis() >
                 queue_.front().deadline_ms) {
        PendingRequest& dead = queue_.front();
        core::QueryEngine* dead_engine = EngineFor(dead.tenant);
        WireResponse resp;
        resp.status = WireStatus::kDeadlineExceeded;
        resp.epoch = dead_engine->index_epoch();
        resp.queue_ms = dead.enqueued.ElapsedMillis();
        resp.message = "deadline expired in admission queue";
        expired->push_back(
            {dead.conn_id, dead.seq, EncodeResponseFrame(resp)});
        dead_engine->RecordDeadlineExpired(1);
        queue_.pop_front();
        ++expired_count;
      }
      if (queue_.size() >= options_.queue_high_watermark) shedding_ = true;
    }
    if (shedding_) {
      shed_this = true;
    } else {
      queue_.push_back(std::move(pending));
    }
    depth = queue_.size();
  }
  PublishQueueDepth(depth);
  if (expired_count > 0) {
    counters_.deadline_expired.fetch_add(expired_count,
                                         std::memory_order_relaxed);
  }
  if (shed_this) {
    // Attributed to the shedding request's own tenant engine: the global
    // queue protects the shared pool, but the dashboard charge stays local.
    pending_engine->RecordLoadShed(1);
    counters_.shed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  queue_cv_.notify_one();
  return true;
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void InflexServer::WorkerLoop() {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (workers_stop_ && queue_.empty()) return;
      while (!queue_.empty() && batch.size() < options_.max_worker_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++busy_workers_;
    }
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    PublishQueueDepth(depth);
    if (options_.worker_hook) options_.worker_hook();
    ServeBatch(std::move(batch));
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --busy_workers_;
      drained = queue_.empty() && busy_workers_ == 0;
    }
    if (drained) queue_drained_.notify_all();
  }
}

void InflexServer::ServeBatch(std::vector<PendingRequest> batch) {
  // Deadline re-check at pop: entries that expired while queued are answered
  // without touching any engine.
  std::vector<Completion> out;
  out.reserve(batch.size());
  uint64_t expired_count = 0;

  // Group the live requests by tenant engine, preserving arrival order
  // within each group, and run ONE QueryBatch per engine — each tenant's
  // batch fans across the shared pool but folds stats into its own engine.
  // Single-tenant traffic collapses to one group, i.e. the original path.
  struct EngineGroup {
    core::QueryEngine* engine = nullptr;
    std::vector<const PendingRequest*> live;
    std::vector<core::QueryRequest> requests;
    std::vector<double> queue_waits;
  };
  std::vector<EngineGroup> groups;
  for (PendingRequest& p : batch) {
    core::QueryEngine* engine = EngineFor(p.tenant);
    double waited = p.enqueued.ElapsedMillis();
    if (p.deadline_ms > 0 && waited > p.deadline_ms) {
      WireResponse resp;
      resp.status = WireStatus::kDeadlineExceeded;
      resp.epoch = engine->index_epoch();
      resp.queue_ms = waited;
      resp.message = "deadline expired in admission queue";
      out.push_back({p.conn_id, p.seq, EncodeResponseFrame(resp)});
      engine->RecordDeadlineExpired(1);
      ++expired_count;
      continue;
    }
    EngineGroup* group = nullptr;
    for (EngineGroup& g : groups) {
      if (g.engine == engine) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->engine = engine;
    }
    group->live.push_back(&p);
    group->requests.push_back(p.query);  // copy: p owns routing metadata
    group->queue_waits.push_back(waited);
  }
  if (expired_count > 0) {
    counters_.deadline_expired.fetch_add(expired_count,
                                         std::memory_order_relaxed);
  }

  uint64_t ok = 0;
  uint64_t failed = 0;
  for (EngineGroup& group : groups) {
    std::vector<Result<core::QueryResult>> results =
        group.engine->QueryBatch(group.requests);
    for (size_t i = 0; i < results.size(); ++i) {
      WireResponse resp;
      if (results[i].ok()) {
        const core::QueryResult& qr = results[i].ValueOrDie();
        resp.status = WireStatus::kOk;
        resp.from_cache = qr.from_cache;
        resp.epsilon_exact = qr.epsilon_exact;
        resp.epoch = qr.generation;
        resp.seeds = qr.seeds;
        resp.similarity_search_ms = qr.similarity_search_ms;
        resp.aggregation_ms = qr.aggregation_ms;
        resp.engine_ms = qr.total_ms;
        ++ok;
      } else {
        resp.status = WireStatus::kQueryFailed;
        resp.epoch = group.engine->index_epoch();
        resp.message = results[i].status().ToString();
        ++failed;
      }
      resp.queue_ms = group.queue_waits[i];
      out.push_back({group.live[i]->conn_id, group.live[i]->seq,
                     EncodeResponseFrame(resp)});
    }
  }
  if (ok > 0) counters_.queries_ok.fetch_add(ok, std::memory_order_relaxed);
  if (failed > 0) {
    counters_.queries_failed.fetch_add(failed, std::memory_order_relaxed);
  }

  RouteCompletions(std::move(out));
}

}  // namespace net
}  // namespace inflex
