#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace inflex {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string ServerStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "net: %llu conns | %llu req, %llu resp | %llu ok, %llu failed | "
      "%llu shed, %llu expired, %llu draining | %llu deltas (%llu deferred) | "
      "%llu malformed | queue %zu (peak %zu)",
      static_cast<unsigned long long>(connections_accepted),
      static_cast<unsigned long long>(requests_received),
      static_cast<unsigned long long>(responses_sent),
      static_cast<unsigned long long>(queries_ok),
      static_cast<unsigned long long>(queries_failed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(rejected_draining),
      static_cast<unsigned long long>(deltas_submitted),
      static_cast<unsigned long long>(deltas_deferred),
      static_cast<unsigned long long>(malformed), queue_depth,
      queue_depth_peak);
  return std::string(buf);
}

InflexServer::InflexServer(core::QueryEngine* engine,
                           const InflexServerOptions& options)
    : engine_(engine), options_(options) {
  INFLEX_CHECK(engine_ != nullptr);
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_worker_batch == 0) options_.max_worker_batch = 1;
  if (options_.queue_high_watermark == 0) options_.queue_high_watermark = 1;
  low_watermark_ = options_.queue_low_watermark != 0
                       ? options_.queue_low_watermark
                       : options_.queue_high_watermark / 2;
  if (low_watermark_ >= options_.queue_high_watermark) {
    low_watermark_ = options_.queue_high_watermark - 1;
  }
}

InflexServer::~InflexServer() { Stop(); }

Status InflexServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("InflexServer::Start called twice");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  std::string host = options_.bind_address;
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(std::string("bind ") + host + ": " +
                               std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  INFLEX_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  INFLEX_RETURN_NOT_OK(SetNonBlocking(wake_pipe_[0]));
  INFLEX_RETURN_NOT_OK(SetNonBlocking(wake_pipe_[1]));

  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void InflexServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!running_.load(std::memory_order_acquire)) return;

  // 1. Stop accepting; new query/delta requests get kShuttingDown.
  draining_.store(true, std::memory_order_release);
  WakeIo();

  // 2. Wait for the admission queue to drain and every worker to go idle —
  // in-flight requests complete with real answers.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_drained_.wait(lock,
                        [this] { return queue_.empty() && busy_workers_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // 3. Bounded flush: wait for the IO thread to route every completion and
  // push the bytes out to (possibly slow) clients.
  Timer drain_timer;
  while (drain_timer.ElapsedMillis() < options_.drain_timeout_ms &&
         (responses_outstanding_.load(std::memory_order_acquire) > 0 ||
          pending_write_bytes_.load(std::memory_order_acquire) > 0)) {
    WakeIo();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Tear the IO thread down; it closes every socket on exit.
  io_stop_.store(true, std::memory_order_release);
  WakeIo();
  io_thread_.join();

  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;

  // 5. Quiesce the maintenance plane last: every delta acknowledged over the
  // wire is published (or superseded) before Stop() returns.
  if (options_.maintainer != nullptr) options_.maintainer->Drain();

  running_.store(false, std::memory_order_release);
}

ServerStats InflexServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServerStats out = stats_;
  out.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  out.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  return out;
}

void InflexServer::WakeIo() {
  char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void InflexServer::PublishQueueDepth(size_t depth) {
  queue_depth_.store(depth, std::memory_order_relaxed);
  size_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
  engine_->ReportAdmissionQueue(depth);
}

// ---------------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------------

void InflexServer::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd (0 = not a conn)

  while (!io_stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    const bool accepting = !draining_.load(std::memory_order_acquire);
    if (!accepting && listen_fd_ >= 0) {
      // Close the listen socket the moment draining starts: connects must
      // fail fast instead of completing into the kernel backlog where no
      // one will ever read them.
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (accepting) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : connections_) {
      short events = conn->saw_eof ? 0 : POLLIN;
      if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn.push_back(id);
    }

    ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);

    if (pfds[0].revents & POLLIN) {
      char drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    DrainCompletions();

    size_t idx = 1;
    if (accepting) {
      if (pfds[idx].revents & POLLIN) AcceptNew();
      ++idx;
    }
    for (; idx < pfds.size(); ++idx) {
      uint64_t id = pfd_conn[idx];
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (pfds[idx].revents & (POLLERR | POLLNVAL)) conn->broken = true;
      if (!conn->broken && (pfds[idx].revents & (POLLIN | POLLHUP))) {
        ReadFrom(conn);  // POLLHUP still delivers buffered bytes, then EOF
      }
      if (!conn->broken && (pfds[idx].revents & POLLOUT)) {
        FlushConnection(conn);
      }
    }
    // Sweep closures last so no helper above ever holds a dangling pointer.
    std::vector<uint64_t> to_close;
    for (auto& [id, conn] : connections_) {
      if (conn->broken ||
          (conn->close_after_flush && conn->woff >= conn->wbuf.size() &&
           conn->parked.empty() && conn->next_seq_out == conn->next_seq_in)) {
        to_close.push_back(id);
      }
    }
    for (uint64_t id : to_close) CloseConnection(id);
  }

  // Shutdown: route any last completions, attempt one final flush, close.
  DrainCompletions();
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (auto& [id, conn] : connections_) {
    FlushConnection(conn.get());
    ids.push_back(id);
  }
  for (uint64_t id : ids) CloseConnection(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void InflexServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      INFLEX_LOG(Warning) << "accept failed: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    uint64_t id = conn->id;
    connections_.emplace(id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void InflexServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  // Whatever never made it to the socket is abandoned with the peer.
  size_t unsent = conn->wbuf.size() - conn->woff;
  if (unsent > 0) {
    pending_write_bytes_.fetch_sub(unsent, std::memory_order_acq_rel);
  }
  ::close(conn->fd);
  connections_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.connections_closed;
}

void InflexServer::ReadFrom(Connection* conn) {
  uint8_t chunk[16 * 1024];
  while (true) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), chunk, chunk + n);
      if (n < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (n == 0) {  // peer closed its write side; flush and close
      conn->saw_eof = true;
      conn->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    conn->broken = true;
    return;
  }

  size_t off = 0;
  while (true) {
    std::span<const uint8_t> rest(conn->rbuf.data() + off,
                                  conn->rbuf.size() - off);
    size_t frame_bytes = 0;
    Status peek = PeekFrame(rest, &frame_bytes);
    if (!peek.ok()) {
      // Length prefix itself is garbage: the stream cannot be resynced.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.malformed;
      }
      WireResponse resp;
      resp.status = WireStatus::kMalformed;
      resp.message = peek.message();
      RespondNow(conn, conn->next_seq_in++, resp);
      conn->close_after_flush = true;
      conn->rbuf.clear();
      return;
    }
    if (frame_bytes == 0 || rest.size() < frame_bytes) break;
    HandleFrame(conn,
                rest.subspan(kFrameHeaderBytes, frame_bytes - kFrameHeaderBytes));
    off += frame_bytes;
    if (conn->close_after_flush) break;  // stop parsing a poisoned stream
  }
  if (off > 0) conn->rbuf.erase(conn->rbuf.begin(), conn->rbuf.begin() + off);
}

void InflexServer::HandleFrame(Connection* conn,
                               std::span<const uint8_t> payload) {
  const uint64_t seq = conn->next_seq_in++;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests_received;
  }

  Result<WireRequest> decoded = DecodeRequestPayload(payload);
  if (!decoded.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.malformed;
    }
    WireResponse resp;
    resp.status = WireStatus::kMalformed;
    resp.message = decoded.status().message();
    RespondNow(conn, seq, resp);
    conn->close_after_flush = true;
    return;
  }
  WireRequest request = std::move(decoded).ValueOrDie();

  if (request.type == MessageType::kPing) {
    WireResponse resp;
    resp.epoch = engine_->index_epoch();
    RespondNow(conn, seq, resp);
    return;
  }

  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_draining;
    }
    WireResponse resp;
    resp.status = WireStatus::kShuttingDown;
    resp.message = "server is draining";
    RespondNow(conn, seq, resp);
    return;
  }

  if (request.type == MessageType::kDelta) {
    RespondNow(conn, seq, HandleDelta(request));
    return;
  }

  // kQuery.
  WireResponse reject;
  reject.status = WireStatus::kInvalidRequest;
  if (request.k == 0) {
    reject.message = "k must be >= 1";
    RespondNow(conn, seq, reject);
    return;
  }
  Result<simplex::TopicDistribution> item =
      simplex::TopicDistribution::Create(std::move(request.gamma));
  if (!item.ok()) {
    reject.message = "bad query mixture: " + item.status().message();
    RespondNow(conn, seq, reject);
    return;
  }

  PendingRequest pending;
  pending.conn_id = conn->id;
  pending.seq = seq;
  pending.query.item = std::move(item).ValueOrDie();
  pending.query.k = request.k;
  pending.query.options = request.ToQueryOptions();
  pending.deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                                 : options_.default_deadline_ms;

  std::vector<Completion> expired;
  const bool admitted = TryAdmit(std::move(pending), &expired);

  // Expired entries drained from the queue front may belong to any
  // connection; route them like worker completions.
  for (Completion& c : expired) {
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;
    Connection* victim = it->second.get();
    victim->parked.emplace(c.seq, std::move(c.frame));
    FlushConnection(victim);
  }

  if (!admitted) {
    WireResponse resp;
    resp.status = WireStatus::kOverloaded;
    resp.retry_after_ms = options_.retry_after_ms;
    resp.epoch = engine_->index_epoch();
    resp.message = "admission queue over high-water mark";
    RespondNow(conn, seq, resp);
  }
}

WireResponse InflexServer::HandleDelta(const WireRequest& request) {
  WireResponse resp;
  resp.epoch = engine_->index_epoch();
  if (options_.maintainer == nullptr) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = "server has no maintenance plane";
    return resp;
  }
  Result<simplex::TopicDistribution> item =
      simplex::TopicDistribution::Create(request.gamma);
  if (!item.ok()) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = "bad delta mixture: " + item.status().message();
    return resp;
  }
  core::CatalogDelta delta;
  delta.id = request.delta_id;
  delta.item = std::move(item).ValueOrDie();
  Result<core::DeltaReceipt> receipt = options_.maintainer->SubmitDelta(delta);
  if (!receipt.ok()) {
    resp.status = WireStatus::kInvalidRequest;
    resp.message = receipt.status().message();
    return resp;
  }
  const core::DeltaReceipt& r = receipt.ValueOrDie();
  resp.delta_outcome = static_cast<uint16_t>(r.outcome) + 1;
  if (r.outcome == core::DeltaOutcome::kRetryLater) {
    resp.status = WireStatus::kOverloaded;
    resp.retry_after_ms = options_.retry_after_ms;
    resp.message = "maintenance plane over high-water mark";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deltas_deferred;
  } else {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deltas_submitted;
  }
  return resp;
}

void InflexServer::RespondNow(Connection* conn, uint64_t seq,
                              const WireResponse& resp) {
  conn->parked.emplace(seq, EncodeResponseFrame(resp));
  FlushConnection(conn);
}

void InflexServer::FlushConnection(Connection* conn) {
  // Append every response whose turn has come (per-request order).
  while (true) {
    auto it = conn->parked.find(conn->next_seq_out);
    if (it == conn->parked.end()) break;
    conn->wbuf.insert(conn->wbuf.end(), it->second.begin(), it->second.end());
    pending_write_bytes_.fetch_add(it->second.size(),
                                   std::memory_order_acq_rel);
    conn->parked.erase(it);
    ++conn->next_seq_out;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses_sent;
  }
  // Push what the socket will take.
  while (conn->woff < conn->wbuf.size()) {
    ssize_t n = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                       conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn->woff += static_cast<size_t>(n);
      pending_write_bytes_.fetch_sub(static_cast<size_t>(n),
                                     std::memory_order_acq_rel);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      break;  // poll will report POLLOUT
    }
    conn->broken = true;
    return;
  }
  if (conn->woff == conn->wbuf.size() && conn->woff > 0) {
    conn->wbuf.clear();
    conn->woff = 0;
  }
}

void InflexServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = connections_.find(c.conn_id);
    if (it != connections_.end()) {
      Connection* conn = it->second.get();
      conn->parked.emplace(c.seq, std::move(c.frame));
      FlushConnection(conn);
    }
    responses_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

bool InflexServer::TryAdmit(PendingRequest pending,
                            std::vector<Completion>* expired) {
  uint64_t expired_count = 0;
  bool shed_this = false;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (shedding_ && queue_.size() <= low_watermark_) shedding_ = false;
    if (queue_.size() >= options_.queue_high_watermark) {
      // The front has waited longest: expire it first, shed only if the
      // queue is still saturated with live requests.
      while (queue_.size() >= options_.queue_high_watermark &&
             !queue_.empty() && queue_.front().deadline_ms > 0 &&
             queue_.front().enqueued.ElapsedMillis() >
                 queue_.front().deadline_ms) {
        PendingRequest& dead = queue_.front();
        WireResponse resp;
        resp.status = WireStatus::kDeadlineExceeded;
        resp.epoch = engine_->index_epoch();
        resp.queue_ms = dead.enqueued.ElapsedMillis();
        resp.message = "deadline expired in admission queue";
        expired->push_back(
            {dead.conn_id, dead.seq, EncodeResponseFrame(resp)});
        queue_.pop_front();
        ++expired_count;
      }
      if (queue_.size() >= options_.queue_high_watermark) shedding_ = true;
    }
    if (shedding_) {
      shed_this = true;
    } else {
      queue_.push_back(std::move(pending));
    }
    depth = queue_.size();
  }
  PublishQueueDepth(depth);
  if (expired_count > 0) {
    engine_->RecordDeadlineExpired(expired_count);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.deadline_expired += expired_count;
  }
  if (shed_this) {
    engine_->RecordLoadShed(1);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed;
    return false;
  }
  queue_cv_.notify_one();
  return true;
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

void InflexServer::WorkerLoop() {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (workers_stop_ && queue_.empty()) return;
      while (!queue_.empty() && batch.size() < options_.max_worker_batch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++busy_workers_;
    }
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    PublishQueueDepth(depth);
    if (options_.worker_hook) options_.worker_hook();
    ServeBatch(std::move(batch));
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --busy_workers_;
      drained = queue_.empty() && busy_workers_ == 0;
    }
    if (drained) queue_drained_.notify_all();
  }
}

void InflexServer::ServeBatch(std::vector<PendingRequest> batch) {
  // Deadline re-check at pop: entries that expired while queued are answered
  // without touching the engine.
  std::vector<Completion> out;
  out.reserve(batch.size());
  std::vector<const PendingRequest*> live;
  std::vector<core::QueryRequest> requests;
  std::vector<double> queue_waits;
  live.reserve(batch.size());
  requests.reserve(batch.size());
  uint64_t expired_count = 0;
  for (PendingRequest& p : batch) {
    double waited = p.enqueued.ElapsedMillis();
    if (p.deadline_ms > 0 && waited > p.deadline_ms) {
      WireResponse resp;
      resp.status = WireStatus::kDeadlineExceeded;
      resp.epoch = engine_->index_epoch();
      resp.queue_ms = waited;
      resp.message = "deadline expired in admission queue";
      out.push_back({p.conn_id, p.seq, EncodeResponseFrame(resp)});
      ++expired_count;
      continue;
    }
    live.push_back(&p);
    requests.push_back(p.query);  // copy: p owns routing metadata
    queue_waits.push_back(waited);
  }
  if (expired_count > 0) {
    engine_->RecordDeadlineExpired(expired_count);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.deadline_expired += expired_count;
  }

  uint64_t ok = 0;
  uint64_t failed = 0;
  if (!requests.empty()) {
    std::vector<Result<core::QueryResult>> results =
        engine_->QueryBatch(requests);
    for (size_t i = 0; i < results.size(); ++i) {
      WireResponse resp;
      if (results[i].ok()) {
        const core::QueryResult& qr = results[i].ValueOrDie();
        resp.status = WireStatus::kOk;
        resp.from_cache = qr.from_cache;
        resp.epsilon_exact = qr.epsilon_exact;
        resp.epoch = qr.generation;
        resp.seeds = qr.seeds;
        resp.similarity_search_ms = qr.similarity_search_ms;
        resp.aggregation_ms = qr.aggregation_ms;
        resp.engine_ms = qr.total_ms;
        ++ok;
      } else {
        resp.status = WireStatus::kQueryFailed;
        resp.epoch = engine_->index_epoch();
        resp.message = results[i].status().ToString();
        ++failed;
      }
      resp.queue_ms = queue_waits[i];
      out.push_back({live[i]->conn_id, live[i]->seq,
                     EncodeResponseFrame(resp)});
    }
  }
  if (ok + failed > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.queries_ok += ok;
    stats_.queries_failed += failed;
  }

  if (!out.empty()) {
    responses_outstanding_.fetch_add(out.size(), std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      for (Completion& c : out) completions_.push_back(std::move(c));
    }
    WakeIo();
  }
}

}  // namespace net
}  // namespace inflex
