#include "net/wire.h"

#include <cstring>

namespace inflex {
namespace net {
namespace {

/// Appends host-order PODs to a byte buffer. The on-wire convention matches
/// the persistence layer (util/serialize.h): raw little-endian PODs,
/// length-prefixed containers.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t at = out_->size();
    out_->resize(at + sizeof(T));
    std::memcpy(out_->data() + at, &v, sizeof(T));
  }

  void Bytes(const void* data, size_t n) {
    const size_t at = out_->size();
    out_->resize(at + n);
    if (n > 0) std::memcpy(out_->data() + at, data, n);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked reader over a frame payload.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> buf) : buf_(buf) {}

  template <typename T>
  Status Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf_.size() - off_ < sizeof(T)) {
      return Status::IOError("truncated wire frame");
    }
    std::memcpy(v, buf_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  Status PodVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = 0;
    INFLEX_RETURN_NOT_OK(Pod(&n));
    if (static_cast<size_t>(n) * sizeof(T) > buf_.size() - off_) {
      return Status::IOError("corrupt vector length in wire frame");
    }
    v->resize(n);
    if (n > 0) {
      std::memcpy(v->data(), buf_.data() + off_, n * sizeof(T));
      off_ += n * sizeof(T);
    }
    return Status::OK();
  }

  Status String(std::string* s) {
    uint32_t n = 0;
    INFLEX_RETURN_NOT_OK(Pod(&n));
    if (n > buf_.size() - off_) {
      return Status::IOError("corrupt string length in wire frame");
    }
    s->assign(reinterpret_cast<const char*>(buf_.data()) + off_, n);
    off_ += n;
    return Status::OK();
  }

  Status ExpectEnd() const {
    if (off_ != buf_.size()) {
      return Status::IOError("trailing bytes after wire frame payload");
    }
    return Status::OK();
  }

 private:
  std::span<const uint8_t> buf_;
  size_t off_ = 0;
};

template <typename T>
void WritePodVector(ByteWriter* w, const std::vector<T>& v) {
  w->Pod<uint32_t>(static_cast<uint32_t>(v.size()));
  w->Bytes(v.data(), v.size() * sizeof(T));
}

void WriteString(ByteWriter* w, const std::string& s) {
  w->Pod<uint32_t>(static_cast<uint32_t>(s.size()));
  w->Bytes(s.data(), s.size());
}

/// Validates the shared magic+version prologue of both message kinds.
Status CheckPrologue(ByteReader* r) {
  uint32_t magic = 0;
  uint16_t version = 0;
  INFLEX_RETURN_NOT_OK(r->Pod(&magic));
  if (magic != kWireMagic) {
    return Status::IOError("bad wire magic");
  }
  INFLEX_RETURN_NOT_OK(r->Pod(&version));
  if (version != kWireVersion) {
    return Status::IOError("unsupported wire version " +
                           std::to_string(version));
  }
  return Status::OK();
}

/// Prepends the length header once the payload is complete.
std::vector<uint8_t> SealFrame(std::vector<uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.resize(kFrameHeaderBytes);
  std::memcpy(frame.data(), &len, sizeof(len));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

constexpr uint8_t kRequestFlagHasSegmentMask = 1u << 0;
/// Tenant id present at the END of the payload (after delta_id). Appending
/// flag-gated fields in flag-bit order is the protocol's forward-evolution
/// rule: a frame that sets no new flags stays byte-identical to v1, and old
/// decoders reject flagged frames at ExpectEnd() instead of misparsing them.
constexpr uint8_t kRequestFlagHasTenant = 1u << 1;
constexpr uint8_t kResponseFlagFromCache = 1u << 0;
constexpr uint8_t kResponseFlagEpsilonExact = 1u << 1;

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kQuery:
      return "query";
    case MessageType::kDelta:
      return "delta";
    case MessageType::kPing:
      return "ping";
  }
  return "unknown";
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kMalformed:
      return "malformed";
    case WireStatus::kInvalidRequest:
      return "invalid-request";
    case WireStatus::kQueryFailed:
      return "query-failed";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kShuttingDown:
      return "shutting-down";
    case WireStatus::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

core::QueryOptions WireRequest::ToQueryOptions() const {
  core::QueryOptions options;
  options.strategy = strategy;
  options.knn_k = knn_k;
  options.max_leaves = max_leaves;
  options.segment_mask = segment_mask;
  return options;
}

WireRequest MakeQueryRequest(const core::QueryRequest& request,
                             uint32_t deadline_ms) {
  WireRequest wire;
  wire.type = MessageType::kQuery;
  wire.gamma = request.item.probs();
  wire.k = static_cast<uint32_t>(request.k);
  wire.strategy = request.options.strategy;
  wire.knn_k = static_cast<uint32_t>(request.options.knn_k);
  wire.max_leaves = static_cast<uint32_t>(request.options.max_leaves);
  wire.segment_mask = request.options.segment_mask;
  wire.deadline_ms = deadline_ms;
  return wire;
}

std::vector<uint8_t> EncodeRequestFrame(const WireRequest& request) {
  std::vector<uint8_t> payload;
  payload.reserve(64 + request.gamma.size() * sizeof(double) +
                  request.segment_mask.size() + request.delta_id.size() +
                  request.tenant.size());
  ByteWriter w(&payload);
  w.Pod(kWireMagic);
  w.Pod(kWireVersion);
  w.Pod(static_cast<uint8_t>(request.type));
  uint8_t flags = 0;
  if (!request.segment_mask.empty()) flags |= kRequestFlagHasSegmentMask;
  if (!request.tenant.empty()) flags |= kRequestFlagHasTenant;
  w.Pod(flags);
  w.Pod(request.k);
  w.Pod(static_cast<uint16_t>(request.strategy));
  w.Pod<uint16_t>(0);  // reserved
  w.Pod(request.knn_k);
  w.Pod(request.max_leaves);
  w.Pod(request.deadline_ms);
  WritePodVector(&w, request.gamma);
  if ((flags & kRequestFlagHasSegmentMask) != 0) {
    WritePodVector(&w, request.segment_mask);
  }
  WriteString(&w, request.delta_id);
  if ((flags & kRequestFlagHasTenant) != 0) {
    WriteString(&w, request.tenant);
  }
  return SealFrame(std::move(payload));
}

Result<WireRequest> DecodeRequestPayload(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  INFLEX_RETURN_NOT_OK(CheckPrologue(&r));
  WireRequest out;
  uint8_t type = 0;
  uint8_t flags = 0;
  uint16_t strategy = 0;
  uint16_t reserved = 0;
  INFLEX_RETURN_NOT_OK(r.Pod(&type));
  if (type < static_cast<uint8_t>(MessageType::kQuery) ||
      type > static_cast<uint8_t>(MessageType::kPing)) {
    return Status::IOError("unknown wire message type " +
                           std::to_string(type));
  }
  out.type = static_cast<MessageType>(type);
  INFLEX_RETURN_NOT_OK(r.Pod(&flags));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.k));
  INFLEX_RETURN_NOT_OK(r.Pod(&strategy));
  if (strategy > static_cast<uint16_t>(core::QueryStrategy::kApproxAd)) {
    return Status::IOError("unknown query strategy " +
                           std::to_string(strategy));
  }
  out.strategy = static_cast<core::QueryStrategy>(strategy);
  INFLEX_RETURN_NOT_OK(r.Pod(&reserved));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.knn_k));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.max_leaves));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.deadline_ms));
  INFLEX_RETURN_NOT_OK(r.PodVector(&out.gamma));
  if ((flags & kRequestFlagHasSegmentMask) != 0) {
    INFLEX_RETURN_NOT_OK(r.PodVector(&out.segment_mask));
  }
  INFLEX_RETURN_NOT_OK(r.String(&out.delta_id));
  if ((flags & kRequestFlagHasTenant) != 0) {
    INFLEX_RETURN_NOT_OK(r.String(&out.tenant));
  }
  INFLEX_RETURN_NOT_OK(r.ExpectEnd());
  return out;
}

std::vector<uint8_t> EncodeResponseFrame(const WireResponse& response) {
  std::vector<uint8_t> payload;
  payload.reserve(80 + response.seeds.size() * sizeof(uint32_t) +
                  response.message.size());
  ByteWriter w(&payload);
  w.Pod(kWireMagic);
  w.Pod(kWireVersion);
  w.Pod(static_cast<uint16_t>(response.status));
  uint8_t flags = 0;
  if (response.from_cache) flags |= kResponseFlagFromCache;
  if (response.epsilon_exact) flags |= kResponseFlagEpsilonExact;
  w.Pod(flags);
  w.Pod<uint8_t>(0);  // reserved
  w.Pod(response.delta_outcome);
  w.Pod(response.retry_after_ms);
  w.Pod(response.epoch);
  WritePodVector(&w, response.seeds);
  w.Pod(response.similarity_search_ms);
  w.Pod(response.aggregation_ms);
  w.Pod(response.engine_ms);
  w.Pod(response.queue_ms);
  WriteString(&w, response.message);
  return SealFrame(std::move(payload));
}

Result<WireResponse> DecodeResponsePayload(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  INFLEX_RETURN_NOT_OK(CheckPrologue(&r));
  WireResponse out;
  uint16_t status = 0;
  uint8_t flags = 0;
  uint8_t reserved = 0;
  INFLEX_RETURN_NOT_OK(r.Pod(&status));
  if (status > static_cast<uint16_t>(WireStatus::kDeadlineExceeded)) {
    return Status::IOError("unknown wire status " + std::to_string(status));
  }
  out.status = static_cast<WireStatus>(status);
  INFLEX_RETURN_NOT_OK(r.Pod(&flags));
  out.from_cache = (flags & kResponseFlagFromCache) != 0;
  out.epsilon_exact = (flags & kResponseFlagEpsilonExact) != 0;
  INFLEX_RETURN_NOT_OK(r.Pod(&reserved));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.delta_outcome));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.retry_after_ms));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.epoch));
  INFLEX_RETURN_NOT_OK(r.PodVector(&out.seeds));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.similarity_search_ms));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.aggregation_ms));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.engine_ms));
  INFLEX_RETURN_NOT_OK(r.Pod(&out.queue_ms));
  INFLEX_RETURN_NOT_OK(r.String(&out.message));
  INFLEX_RETURN_NOT_OK(r.ExpectEnd());
  return out;
}

Status PeekFrame(std::span<const uint8_t> buf, size_t* total_frame_bytes) {
  *total_frame_bytes = 0;
  if (buf.size() < kFrameHeaderBytes) return Status::OK();  // need more
  uint32_t len = 0;
  std::memcpy(&len, buf.data(), sizeof(len));
  if (len == 0) {
    return Status::IOError("empty wire frame payload");
  }
  if (len > kMaxFramePayloadBytes) {
    return Status::IOError("oversized wire frame (" + std::to_string(len) +
                           " bytes)");
  }
  *total_frame_bytes = kFrameHeaderBytes + len;
  return Status::OK();
}

}  // namespace net
}  // namespace inflex
