#ifndef INFLEX_NET_CLIENT_H_
#define INFLEX_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "inflex/query_engine.h"
#include "net/wire.h"
#include "util/status.h"

namespace inflex {
namespace net {

/// \brief A blocking INFLEX wire-protocol client over one TCP connection.
///
/// One request in flight at a time (Call writes a frame and blocks for the
/// response frame); open several clients for concurrency — the load
/// generator in bench_net_throughput does exactly that, one per closed-loop
/// thread. Not thread-safe; a client belongs to one thread at a time.
///
/// A transport failure (connection reset, timeout, framing error) returns a
/// non-OK Status and poisons the connection — every later Call fails too;
/// reconnect with Connect(). Server-side failures arrive as OK Results whose
/// WireResponse carries a non-kOk status (kOverloaded, kQueryFailed, ...):
/// the transport worked, the server said no.
class InflexClient {
 public:
  /// Connects to host:port. `timeout_ms` bounds the connect AND each later
  /// send/receive (0 = block forever).
  static Result<InflexClient> Connect(const std::string& host, uint16_t port,
                                      double timeout_ms = 0);

  InflexClient() = default;
  ~InflexClient() { Close(); }

  InflexClient(InflexClient&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        tenant_(std::move(other.tenant_)) {}
  InflexClient& operator=(InflexClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      tenant_ = std::move(other.tenant_);
    }
    return *this;
  }
  InflexClient(const InflexClient&) = delete;
  InflexClient& operator=(const InflexClient&) = delete;

  /// Sends one request frame and blocks for its response frame.
  Result<WireResponse> Call(const WireRequest& request);

  /// Tenant/catalog id stamped into every request the convenience wrappers
  /// below build (Call sends its argument verbatim). Empty (the default)
  /// emits tenant-free frames byte-identical to a pre-tenant v1 client,
  /// which servers route to the default tenant.
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }
  const std::string& tenant() const { return tenant_; }

  /// Convenience wrappers over Call().
  Result<WireResponse> Query(const core::QueryRequest& request,
                             uint32_t deadline_ms = 0);
  Result<WireResponse> Ping();
  Result<WireResponse> SubmitDelta(const std::string& delta_id,
                                   const simplex::TopicVector& item_gamma);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  explicit InflexClient(int fd) : fd_(fd) {}

  Status WriteAll(const uint8_t* data, size_t size);
  Status ReadExactly(uint8_t* data, size_t size);

  int fd_ = -1;
  std::string tenant_;
};

}  // namespace net
}  // namespace inflex

#endif  // INFLEX_NET_CLIENT_H_
