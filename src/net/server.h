#ifndef INFLEX_NET_SERVER_H_
#define INFLEX_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "inflex/index_maintainer.h"
#include "inflex/query_engine.h"
#include "net/wire.h"
#include "tenant/tenant_router.h"
#include "util/timer.h"

namespace inflex {
namespace net {

/// \brief Options for an InflexServer.
struct InflexServerOptions {
  /// IPv4 address to bind ("localhost" is accepted as 127.0.0.1).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// IO (poll) loops. 1 keeps the classic single-loop plane; N > 1 opens N
  /// listen sockets on the same port with SO_REUSEPORT, so the kernel shards
  /// incoming connections across loops and each loop owns its connections
  /// exclusively — reads, decodes, and ordered flushes never cross loops.
  /// Clamped to [1, 64].
  size_t io_threads = 1;
  /// Worker threads draining the admission queue into QueryEngine::QueryBatch.
  size_t num_workers = 4;
  /// Upper bound on requests one worker drains into a single QueryBatch call
  /// (the batch then fans across the engine's pool). Larger batches amortize
  /// dispatch under load; 1 serves strictly one request at a time.
  size_t max_worker_batch = 8;
  /// Admission high-water mark: once the queue holds this many requests the
  /// server starts shedding new queries with kOverloaded (after first
  /// draining queue entries whose deadline already expired).
  size_t queue_high_watermark = 1024;
  /// Hysteresis: shedding stops only once the queue drains to this depth
  /// (0 = half the high-water mark). Two levels keep the server from
  /// flapping between admit and shed at the boundary.
  size_t queue_low_watermark = 0;
  /// Retry hint stamped into kOverloaded responses.
  uint32_t retry_after_ms = 50;
  /// Queue-wait budget applied to requests that carry deadline_ms = 0
  /// (0 = no default deadline).
  uint32_t default_deadline_ms = 0;
  /// How long Stop() waits for outbound responses to flush to slow clients
  /// before force-closing their connections.
  double drain_timeout_ms = 5000.0;
  /// Optional maintenance plane: kDelta requests are submitted here (a
  /// kRetryLater receipt maps to kOverloaded on the wire) and Stop() drains
  /// it after the query pipeline. nullptr rejects deltas as kInvalidRequest.
  /// Ignored when `router` is set — each tenant then brings its own
  /// maintainer.
  core::IndexMaintainer* maintainer = nullptr;
  /// Optional multi-tenant front: when set, every request resolves its wire
  /// tenant id through the router's registry (empty id = the default
  /// tenant; unknown ids are kInvalidRequest, never silently cross-catalog)
  /// and is served by THAT tenant's engine/maintainer. Queries additionally
  /// pass the tenant's token bucket before the shared admission queue, so an
  /// over-budget tenant is shed with kOverloaded while everyone else keeps
  /// their latency. The router (and its registry) must outlive the server;
  /// the constructor engine then only backs global queue-depth mirroring and
  /// should be the default tenant's engine. nullptr = classic single-tenant
  /// serving: the constructor engine serves everything, and a request
  /// naming any tenant other than "default" is kInvalidRequest.
  tenant::TenantRouter* router = nullptr;
  /// Test seam: invoked by a worker after popping a batch and before serving
  /// it. The overload and shutdown tests park workers here to make queue
  /// buildup deterministic. Leave empty in production.
  std::function<void()> worker_hook;
};

/// \brief Cumulative counters of the network front end.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t requests_received = 0;
  uint64_t responses_sent = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t deltas_submitted = 0;
  /// Queries shed with kOverloaded by admission control.
  uint64_t shed = 0;
  /// Delta submissions deferred by maintenance back-pressure (also answered
  /// kOverloaded).
  uint64_t deltas_deferred = 0;
  /// Requests answered kDeadlineExceeded from the admission queue.
  uint64_t deadline_expired = 0;
  /// Undecodable frames (each also closes its connection).
  uint64_t malformed = 0;
  /// Requests rejected with kShuttingDown during drain.
  uint64_t rejected_draining = 0;
  /// Admission-queue depth: current and high-water observed.
  size_t queue_depth = 0;
  size_t queue_depth_peak = 0;
  /// One-line operator rendering.
  std::string ToString() const;
};

/// \brief The network serving front end: a TCP server speaking the INFLEX
/// wire protocol (net/wire.h) in front of a QueryEngine, with bounded
/// admission and load shedding.
///
/// Architecture (three planes, no lock shared with the query hot path):
///  - **IO loops**: `io_threads` poll() loops, each owning a disjoint set of
///    connections. With N > 1 loops every loop has its own listen socket on
///    the shared port (SO_REUSEPORT) and the kernel shards accepts across
///    them, so connection IO never takes a cross-loop lock. A connection's
///    id encodes its owning loop; worker completions are routed back to that
///    loop, so the seq-ordered flush logic stays single-threaded per
///    connection exactly as in the one-loop design. Responses to one
///    connection always flush in request order (per-connection sequence
///    numbers reorder worker completions), so pipelined clients stay
///    coherent.
///  - **Admission queue**: a bounded FIFO between the IO loops and the
///    workers. Two watermarks with hysteresis: depth >= high starts
///    shedding (kOverloaded + retry_after_ms, produced by the IO loop
///    without touching a worker), and shedding stops once depth <= low.
///    Before shedding, expired-deadline entries are drained from the front
///    (kDeadlineExceeded) — the oldest waiting request is the one least
///    likely to still have a caller. Workers re-check deadlines at pop.
///  - **Workers**: drain up to max_worker_batch requests per iteration into
///    one QueryEngine::QueryBatch call (reusing the engine's pool fan-out,
///    cache, and ServingStats), then hand encoded responses back to the
///    owning IO loops. Queue depth / shed / expiry counters are mirrored
///    into the engine's ServingStats so the serving dashboard sees overload.
///
/// Server counters are relaxed atomics (assembled into ServerStats at
/// read), so the request path never touches a stats mutex.
///
/// Graceful shutdown (Stop(), also run by the destructor): stop accepting
/// connections, answer new requests kShuttingDown, wait until the admission
/// queue is empty and every worker is idle, flush outbound buffers (bounded
/// by drain_timeout_ms), then join threads, close sockets, and Drain() the
/// attached maintainer. In-flight requests complete with real answers.
class InflexServer {
 public:
  /// The engine must outlive the server. Construction does not open sockets;
  /// call Start().
  InflexServer(core::QueryEngine* engine,
               const InflexServerOptions& options = {});
  ~InflexServer();

  InflexServer(const InflexServer&) = delete;
  InflexServer& operator=(const InflexServer&) = delete;

  /// Binds, listens, and starts the IO + worker threads. Fails on socket
  /// errors (port in use, bad address). Must be called at most once.
  Status Start();

  /// Graceful shutdown; idempotent, thread-safe, and safe to call while
  /// clients are mid-request (they receive their answers first).
  void Stop();

  /// Bound TCP port (resolves port 0 after Start()).
  uint16_t port() const { return bound_port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// A request admitted to the queue, waiting for a worker. The wire request
  /// is already translated into engine terms (the IO loop validates the
  /// mixture once at decode; workers never re-parse).
  struct PendingRequest {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    core::QueryRequest query;
    /// Started at admission; its elapsed time is the queue wait.
    Timer enqueued;
    /// Queue-wait budget in ms (0 = none).
    uint32_t deadline_ms = 0;
    /// Resolved tenant (nullptr in single-tenant mode). The shared_ptr pins
    /// the tenant across a concurrent DropTenant: a queued request finishes
    /// against the engine it was admitted to.
    std::shared_ptr<tenant::Tenant> tenant;
  };

  /// An encoded response traveling worker -> IO loop.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::vector<uint8_t> frame;
  };

  /// Per-connection state, owned by exactly one IO loop.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> rbuf;
    /// Bytes queued toward the socket; [woff, size) still unwritten.
    std::vector<uint8_t> wbuf;
    size_t woff = 0;
    /// Next sequence number assigned to an incoming request.
    uint64_t next_seq_in = 0;
    /// Next response sequence to append to wbuf (in-order flush).
    uint64_t next_seq_out = 0;
    /// Out-of-order worker completions parked until their turn.
    std::map<uint64_t, std::vector<uint8_t>> parked;
    /// Close once every pending response has flushed (set on malformed
    /// frames — the stream is desynchronized beyond repair — and on peer
    /// EOF).
    bool close_after_flush = false;
    /// The peer shut its write side; stop polling for reads.
    bool saw_eof = false;
    /// Fatal socket error: close at the next IoLoop sweep. Set instead of
    /// closing inline so helpers never invalidate a Connection* their
    /// caller still holds.
    bool broken = false;
  };

  /// One IO loop's world: its listen socket (same port, SO_REUSEPORT), wake
  /// pipe, inbound completion queue, and the connections it exclusively
  /// owns. Connection ids encode the loop index in the top 16 bits, so any
  /// thread can route a Completion home without a registry lookup.
  struct IoLoopState {
    size_t index = 0;
    int listen_fd = -1;
    int wake_pipe[2] = {-1, -1};
    std::thread thread;
    /// Worker -> this loop handoff.
    std::mutex completions_mu;
    std::vector<Completion> completions;
    /// Loop-thread-only state.
    std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections;
    uint64_t next_conn_id = 1;
  };
  static constexpr size_t kMaxIoThreads = 64;
  static constexpr unsigned kConnIdLoopShift = 48;

  static size_t LoopOf(uint64_t conn_id) { return conn_id >> kConnIdLoopShift; }

  void IoLoop(IoLoopState* loop);
  void WorkerLoop();

  /// IO-loop helpers (each call runs on the loop's own thread).
  void AcceptNew(IoLoopState* loop);
  void ReadFrom(Connection* conn);
  void HandleFrame(Connection* conn, std::span<const uint8_t> payload);
  void CloseConnection(IoLoopState* loop, uint64_t conn_id);
  /// Routes a loop-generated response (shed, malformed, ping, delta
  /// receipt, shutdown) through the ordered flush path.
  void RespondNow(Connection* conn, uint64_t seq, const WireResponse& resp);
  /// Appends every in-order parked response to wbuf and writes what the
  /// socket accepts.
  void FlushConnection(Connection* conn);
  void DrainCompletions(IoLoopState* loop);
  /// Hands completions (from any thread) to their owning loops and wakes
  /// them. Bumps responses_outstanding_ per completion; the owning loop
  /// decrements as it routes.
  void RouteCompletions(std::vector<Completion> completions);
  void WakeLoop(IoLoopState* loop);
  void WakeAllLoops();

  /// Opens one non-blocking listen socket on `port` (0 = ephemeral); with
  /// `reuse_port`, peers sharing the port balance accepts in the kernel.
  Status OpenListenSocket(uint16_t port, bool reuse_port, int* out_fd,
                          uint16_t* out_port);

  /// Admission: true when enqueued, false when shed. Queue entries whose
  /// deadline expired while waiting are drained into `expired` (already
  /// encoded as kDeadlineExceeded completions) before the shed decision.
  bool TryAdmit(PendingRequest pending, std::vector<Completion>* expired);
  /// Handles a kDelta request via the maintainer (IO loop; the admission
  /// probe is a microsecond 1-NN lookup). `tenant` is the resolved tenant in
  /// multi-tenant mode, nullptr otherwise (options_.maintainer serves).
  WireResponse HandleDelta(const WireRequest& request,
                           const std::shared_ptr<tenant::Tenant>& tenant);

  /// Worker-side: answers a popped batch through QueryEngine::QueryBatch —
  /// grouped by tenant engine, one batch call per engine — and hands the
  /// encoded responses back to the owning IO loops.
  void ServeBatch(std::vector<PendingRequest> batch);

  /// The engine serving `tenant` (engine_ when tenant is null).
  core::QueryEngine* EngineFor(
      const std::shared_ptr<tenant::Tenant>& tenant) const {
    return tenant != nullptr ? tenant->engine() : engine_;
  }

  void PublishQueueDepth(size_t depth);

  core::QueryEngine* engine_;
  InflexServerOptions options_;
  size_t low_watermark_ = 0;

  std::vector<std::unique_ptr<IoLoopState>> io_loops_;
  uint16_t bound_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  /// Set by Stop(): no new connections, new requests get kShuttingDown.
  std::atomic<bool> draining_{false};
  /// Set by Stop() after the queue drains: IO loops exit.
  std::atomic<bool> io_stop_{false};

  /// Admission queue (IO loops push, workers pop).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;       // wakes workers
  std::condition_variable queue_drained_;  // wakes Stop()
  std::deque<PendingRequest> queue_;
  bool shedding_ = false;        // guarded by queue_mu_
  size_t busy_workers_ = 0;      // guarded by queue_mu_
  bool workers_stop_ = false;    // guarded by queue_mu_

  /// Worker completions pushed but not yet routed by an IO loop; Stop()
  /// waits for this to reach zero before tearing the IO loops down.
  std::atomic<uint64_t> responses_outstanding_{0};
  /// Bytes appended to connection write buffers but not yet accepted by the
  /// sockets (IO loops update; Stop() bounds its flush wait on it).
  std::atomic<size_t> pending_write_bytes_{0};

  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> queue_depth_peak_{0};

  /// ServerStats counters as relaxed atomics: bumped on the request path by
  /// IO loops and workers without any shared mutex; stats() assembles a
  /// ServerStats from point-in-time loads.
  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_closed{0};
    std::atomic<uint64_t> requests_received{0};
    std::atomic<uint64_t> responses_sent{0};
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> deltas_submitted{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> deltas_deferred{0};
    std::atomic<uint64_t> deadline_expired{0};
    std::atomic<uint64_t> malformed{0};
    std::atomic<uint64_t> rejected_draining{0};
  };
  mutable Counters counters_;

  std::vector<std::thread> workers_;
  std::mutex stop_mu_;  // serializes Stop()
};

}  // namespace net
}  // namespace inflex

#endif  // INFLEX_NET_SERVER_H_
