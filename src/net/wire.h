#ifndef INFLEX_NET_WIRE_H_
#define INFLEX_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace net {

/// First four payload bytes of every INFLEX wire message ("INFL" viewed as a
/// little-endian uint32). A frame whose payload does not start with this is
/// rejected without interpreting the rest.
inline constexpr uint32_t kWireMagic = 0x4C464E49;  // 'I' 'N' 'F' 'L'

/// Protocol version carried by every message. Bumped on any layout change;
/// the decoder rejects mismatches so old clients fail fast instead of
/// misparsing.
inline constexpr uint16_t kWireVersion = 1;

/// Upper bound on one frame's payload. Large enough for a query over
/// thousands of topics plus a full segment mask; anything bigger is treated
/// as a framing error (a desynchronized or hostile peer), not a large
/// request.
inline constexpr size_t kMaxFramePayloadBytes = 1u << 20;  // 1 MiB

/// Bytes of the length prefix in front of every payload.
inline constexpr size_t kFrameHeaderBytes = 4;

/// \brief What a request frame asks the server to do.
enum class MessageType : uint8_t {
  /// Answer Q(γ_q, k) from the serving index.
  kQuery = 1,
  /// Submit a catalog delta to the maintenance plane.
  kDelta = 2,
  /// Liveness probe; the response carries the current index epoch.
  kPing = 3,
};

const char* MessageTypeName(MessageType type);

/// \brief Status code of a response frame.
enum class WireStatus : uint16_t {
  kOk = 0,
  /// The request frame could not be decoded; the server closes the
  /// connection after sending this (framing state is unknown).
  kMalformed = 1,
  /// The frame decoded but the request is semantically invalid (bad mixture,
  /// k = 0, dimension mismatch, delta without a maintenance plane).
  kInvalidRequest = 2,
  /// The engine ran the query and failed (e.g. empty retrieval); `message`
  /// carries the engine status text.
  kQueryFailed = 3,
  /// Shed by admission control (queue over the high-water mark) or deferred
  /// by maintenance back-pressure; retry_after_ms suggests when to retry.
  kOverloaded = 4,
  /// The server is draining for shutdown and no longer admits work.
  kShuttingDown = 5,
  /// The request expired in the admission queue before a worker picked it
  /// up (its deadline_ms elapsed while waiting).
  kDeadlineExceeded = 6,
};

const char* WireStatusName(WireStatus status);

/// \brief One decoded request. A single layout serves every MessageType —
/// query-only fields are ignored for deltas and vice versa — so round-trip
/// encoding is uniform and version checks cover the whole surface.
struct WireRequest {
  MessageType type = MessageType::kQuery;
  /// γ_q (or the delta's item mixture): Z doubles, bit-exact across the
  /// wire. Servers validate simplex membership, they do not renormalize
  /// already-normalized vectors, so a loopback answer is bit-identical to an
  /// in-process one.
  simplex::TopicVector gamma;
  /// Answer size.
  uint32_t k = 10;
  /// Answer-shaping QueryOptions fingerprint fields (the ones heterogeneous
  /// traffic actually varies; nested search/weighting/aggregation parameters
  /// stay at server defaults — see DESIGN.md §12).
  core::QueryStrategy strategy = core::QueryStrategy::kInflex;
  uint32_t knn_k = 10;
  uint32_t max_leaves = 5;
  std::vector<uint8_t> segment_mask;
  /// Queue-wait budget in milliseconds; 0 = use the server default (which
  /// may itself be "none"). Expired requests are answered kDeadlineExceeded
  /// without running the engine.
  uint32_t deadline_ms = 0;
  /// Operator-facing identifier of a kDelta request.
  std::string delta_id;
  /// Tenant/catalog id this request targets. Flag-gated on the wire (the
  /// first TLV/flag-gated field of the protocol-evolution plan): when empty
  /// the flag is not set and the encoded frame is byte-identical to a
  /// pre-tenant v1 frame, and servers route it to the default tenant. A v1
  /// decoder never sees the field; a tenant-aware decoder reads it only when
  /// the flag is present.
  std::string tenant;

  /// The QueryOptions this request maps to on the server.
  core::QueryOptions ToQueryOptions() const;
};

/// Builds a kQuery request from an in-process QueryRequest (the transport
/// counterpart of QueryEngine::Query's argument).
WireRequest MakeQueryRequest(const core::QueryRequest& request,
                             uint32_t deadline_ms = 0);

/// \brief One decoded response.
struct WireResponse {
  WireStatus status = WireStatus::kOk;
  bool from_cache = false;
  bool epsilon_exact = false;
  /// Suggested client back-off for kOverloaded (0 otherwise).
  uint32_t retry_after_ms = 0;
  /// Index generation that served the answer (also set for pings and delta
  /// receipts: the epoch current when the server handled the request).
  uint64_t epoch = 0;
  /// DeltaOutcome + 1 for delta receipts; 0 for non-delta responses.
  uint16_t delta_outcome = 0;
  /// The ranked seed list (empty unless an OK query response).
  std::vector<uint32_t> seeds;
  /// Server-side stage timings plus the admission-queue wait, so a client
  /// can split its observed latency into wire time and server time.
  double similarity_search_ms = 0.0;
  double aggregation_ms = 0.0;
  double engine_ms = 0.0;
  double queue_ms = 0.0;
  /// Status text for failures (empty on kOk).
  std::string message;

  bool ok() const { return status == WireStatus::kOk; }
};

/// Encodes a complete frame: 4-byte little-endian payload length, then the
/// payload (magic + version + fields).
std::vector<uint8_t> EncodeRequestFrame(const WireRequest& request);
std::vector<uint8_t> EncodeResponseFrame(const WireResponse& response);

/// Decodes a frame payload (the bytes after the length prefix). Rejects bad
/// magic, version mismatches, truncated fields, out-of-range enums, and
/// trailing garbage.
Result<WireRequest> DecodeRequestPayload(std::span<const uint8_t> payload);
Result<WireResponse> DecodeResponsePayload(std::span<const uint8_t> payload);

/// Frame scanner for a streaming read buffer. On success sets
/// *total_frame_bytes to the full frame size (header + payload) — 0 when the
/// buffer does not yet hold the 4-byte header — and the caller consumes the
/// frame once buf.size() >= *total_frame_bytes. Fails when the header
/// announces an empty or oversized payload (a desynchronized peer; the
/// connection should be closed).
Status PeekFrame(std::span<const uint8_t> buf, size_t* total_frame_bytes);

}  // namespace net
}  // namespace inflex

#endif  // INFLEX_NET_WIRE_H_
