#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <vector>

namespace inflex {
namespace net {

Result<InflexClient> InflexClient::Connect(const std::string& host,
                                           uint16_t port, double timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1e3);
    tv.tv_usec = static_cast<suseconds_t>(
        std::fmod(timeout_ms, 1e3) * 1e3);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string resolved = host;
  if (resolved == "localhost" || resolved.empty()) resolved = "127.0.0.1";
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError("connect " + resolved + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  return InflexClient(fd);
}

void InflexClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status InflexClient::WriteAll(const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send: ") +
                           (n < 0 ? std::strerror(errno) : "short write"));
  }
  return Status::OK();
}

Status InflexClient::ReadExactly(uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::recv(fd_, data + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server mid-frame");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<WireResponse> InflexClient::Call(const WireRequest& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  std::vector<uint8_t> frame = EncodeRequestFrame(request);
  Status s = WriteAll(frame.data(), frame.size());
  if (!s.ok()) {
    Close();
    return s;
  }

  uint8_t header[kFrameHeaderBytes];
  s = ReadExactly(header, sizeof(header));
  if (!s.ok()) {
    Close();
    return s;
  }
  uint32_t payload_bytes = 0;
  std::memcpy(&payload_bytes, header, sizeof(payload_bytes));
  if (payload_bytes == 0 || payload_bytes > kMaxFramePayloadBytes) {
    Close();
    return Status::IOError("bad response frame length: " +
                           std::to_string(payload_bytes));
  }
  std::vector<uint8_t> payload(payload_bytes);
  s = ReadExactly(payload.data(), payload.size());
  if (!s.ok()) {
    Close();
    return s;
  }
  Result<WireResponse> resp = DecodeResponsePayload(payload);
  if (!resp.ok()) Close();
  return resp;
}

Result<WireResponse> InflexClient::Query(const core::QueryRequest& request,
                                         uint32_t deadline_ms) {
  WireRequest wire = MakeQueryRequest(request, deadline_ms);
  wire.tenant = tenant_;
  return Call(wire);
}

Result<WireResponse> InflexClient::Ping() {
  WireRequest request;
  request.type = MessageType::kPing;
  request.gamma = {1.0};  // payload layout always carries a mixture
  request.tenant = tenant_;
  return Call(request);
}

Result<WireResponse> InflexClient::SubmitDelta(
    const std::string& delta_id, const simplex::TopicVector& item_gamma) {
  WireRequest request;
  request.type = MessageType::kDelta;
  request.gamma = item_gamma;
  request.delta_id = delta_id;
  request.tenant = tenant_;
  return Call(request);
}

}  // namespace net
}  // namespace inflex
