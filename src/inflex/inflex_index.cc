#include "inflex/inflex_index.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "im/celfpp.h"
#include "im/snapshot_oracle.h"
#include "simplex/topic_distribution.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace inflex {
namespace core {

namespace {
constexpr uint32_t kIndexMagic = 0x494e4658;  // "INFX"
constexpr uint32_t kIndexVersion = 1;
}  // namespace

const char* QueryStrategyName(QueryStrategy s) {
  switch (s) {
    case QueryStrategy::kInflex:
      return "INFLEX";
    case QueryStrategy::kExactKnn:
      return "exactKNN";
    case QueryStrategy::kApproxKnn:
      return "approxKNN";
    case QueryStrategy::kApproxKnnSel:
      return "approxKNN+Sel";
    case QueryStrategy::kApproxAd:
      return "approxAD";
  }
  return "?";
}

Result<InflexIndex> InflexIndex::Build(
    const graph::TopicGraph& graph,
    const std::vector<simplex::TopicDistribution>& catalog,
    const InflexBuildOptions& options) {
  if (catalog.empty()) {
    return Status::InvalidArgument("INFLEX build requires an item catalog");
  }
  if (catalog.front().num_topics() != graph.num_topics()) {
    return Status::InvalidArgument("catalog dimension does not match graph");
  }
  if (options.seed_list_length == 0) {
    return Status::InvalidArgument("seed_list_length must be positive");
  }
  if (options.seed_list_length > graph.num_nodes()) {
    return Status::InvalidArgument("seed_list_length exceeds node count");
  }

  // Phase 1 (§3.1): select the h index points.
  INFLEX_ASSIGN_OR_RETURN(IndexPointSelection selection,
                          SelectIndexPoints(catalog, options.index_points));
  const size_t h = selection.points.size();
  INFLEX_LOG(Info) << "INFLEX build: " << h << " index points selected, "
                   << "precomputing seed lists (l=" << options.seed_list_length
                   << ", " << options.oracle_snapshots << " snapshots each)";

  // Phase 2: one CELF++ run per index point — the heavy offline stage, so
  // it is parallelized across points (each task owns its oracle).
  std::vector<rank::RankedList> seed_lists(h);
  std::vector<Status> statuses(h);
  auto precompute_one = [&](size_t i) {
    simplex::TopicVector point = selection.points[i];
    auto item = simplex::TopicDistribution::Create(std::move(point));
    if (!item.ok()) {
      statuses[i] = item.status();
      return;
    }
    const graph::ArcProbabilities probs =
        graph.ItemArcProbabilities(item.ValueOrDie());
    im::SnapshotSpreadOracle::Options oopts;
    oopts.num_snapshots = options.oracle_snapshots;
    oopts.seed = options.seed + i;
    auto oracle = im::SnapshotSpreadOracle::Create(graph, probs, oopts);
    if (!oracle.ok()) {
      statuses[i] = oracle.status();
      return;
    }
    im::SeedSelectionOptions sopts;
    // The outer loop already saturates the pool; nested parallelism would
    // deadlock a pool waiting on itself.
    sopts.parallel_first_iteration = false;
    auto seeds = im::SelectSeedsCelfPp(&oracle.ValueOrDie(),
                                       options.seed_list_length, sopts);
    if (!seeds.ok()) {
      statuses[i] = seeds.status();
      return;
    }
    seed_lists[i].assign(seeds.ValueOrDie().seeds.begin(),
                         seeds.ValueOrDie().seeds.end());
  };
  if (options.parallel_precompute) {
    ParallelFor(0, h, precompute_one, options.pool);
  } else {
    for (size_t i = 0; i < h; ++i) precompute_one(i);
  }
  for (const Status& s : statuses) {
    INFLEX_RETURN_NOT_OK(s);
  }

  return FromParts(&graph, std::move(selection.points), std::move(seed_lists),
                   options.tree);
}

Result<InflexIndex> InflexIndex::FromParts(
    const graph::TopicGraph* graph, std::vector<simplex::TopicVector> points,
    std::vector<rank::RankedList> seed_lists,
    const bbtree::BbTreeOptions& tree_options) {
  if (points.size() != seed_lists.size()) {
    return Status::InvalidArgument("one seed list per index point expected");
  }
  if (points.empty()) {
    return Status::InvalidArgument("index requires at least one point");
  }
  size_t ell = 0;
  for (const auto& list : seed_lists) {
    if (list.empty()) {
      return Status::InvalidArgument("empty pre-computed seed list");
    }
    INFLEX_RETURN_NOT_OK(rank::ValidateRankedList(list));
    if (graph != nullptr) {
      for (rank::Item v : list) {
        if (v >= graph->num_nodes()) {
          return Status::InvalidArgument("seed list references unknown node");
        }
      }
    }
    ell = std::max(ell, list.size());
  }

  InflexIndex index;
  index.graph_ = graph;
  index.seed_list_length_ = ell;
  index.seed_lists_ = std::move(seed_lists);
  INFLEX_ASSIGN_OR_RETURN(index.tree_,
                          bbtree::BbTree::Build(std::move(points),
                                                tree_options));
  return index;
}

bbtree::InflexSearchResult InflexIndex::RunSearch(
    const simplex::TopicVector& q, const QueryOptions& options) const {
  // One search context per serving thread: the per-query log transform and
  // all tree-search scratch reuse its buffers, so steady-state queries do
  // not allocate in the search stage.
  thread_local bbtree::SearchContext ctx;
  switch (options.strategy) {
    case QueryStrategy::kInflex: {
      bbtree::InflexSearchOptions sopts = options.search;
      sopts.max_leaves = options.max_leaves;
      return tree_.InflexSearch(q, sopts, &ctx);
    }
    case QueryStrategy::kExactKnn: {
      bbtree::InflexSearchResult r;
      r.neighbors = tree_.ExactKnn(q, options.knn_k, &r.stats, &ctx);
      return r;
    }
    case QueryStrategy::kApproxKnn:
    case QueryStrategy::kApproxKnnSel: {
      bbtree::InflexSearchResult r;
      r.neighbors = tree_.LeafBoundedKnn(q, options.knn_k, options.max_leaves,
                                         &r.stats, &ctx);
      return r;
    }
    case QueryStrategy::kApproxAd: {
      bbtree::InflexSearchOptions sopts = options.search;
      sopts.max_leaves = options.max_leaves;
      sopts.use_ad_early_stop = true;
      return tree_.InflexSearch(q, sopts, &ctx);
    }
  }
  INFLEX_CHECK(false);
  return {};
}

namespace {

// Restricts a seed list to the campaign segment, preserving rank order.
rank::RankedList FilterToSegment(const rank::RankedList& list,
                                 const std::vector<uint8_t>& mask) {
  if (mask.empty()) return list;
  rank::RankedList out;
  out.reserve(list.size());
  for (rank::Item v : list) {
    if (v < mask.size() && mask[v] != 0) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<QueryResult> InflexIndex::Query(const simplex::TopicDistribution& item,
                                       size_t k,
                                       const QueryOptions& options) const {
  if (item.num_topics() != num_topics()) {
    return Status::InvalidArgument("query dimension does not match the index");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (!options.segment_mask.empty() && graph_ != nullptr &&
      options.segment_mask.size() != graph_->num_nodes()) {
    return Status::InvalidArgument("segment mask must have one entry per node");
  }

  Timer total_timer;
  QueryResult result;

  // Stage 1: similarity search (§4.1).
  Timer search_timer;
  bbtree::InflexSearchResult search = RunSearch(item.probs(), options);
  result.similarity_search_ms = search_timer.ElapsedMillis();
  result.search_stats = search.stats;

  if (search.neighbors.empty()) {
    return Status::Internal("similarity search returned no neighbors");
  }

  if (search.epsilon_exact) {
    // ε-exact match: return the stored list directly, truncated to k.
    const rank::RankedList list = FilterToSegment(
        seed_lists_[search.neighbors[0].point_id], options.segment_mask);
    if (list.empty()) {
      return Status::NotFound(
          "the matched seed list contains no segment member");
    }
    result.epsilon_exact = true;
    result.neighbors_used = search.neighbors;
    result.seeds.assign(list.begin(),
                        list.begin() + std::min(k, list.size()));
    result.total_ms = total_timer.ElapsedMillis();
    return result;
  }

  // Stage 2: importance weights + automatic neighbor selection (§4.2).
  Timer agg_timer;
  INFLEX_ASSIGN_OR_RETURN(
      std::vector<double> weights,
      ComputeImportanceWeights(search.neighbors, options.weighting));
  size_t keep = weights.size();
  const bool selection_enabled =
      options.strategy == QueryStrategy::kInflex ||
      options.strategy == QueryStrategy::kApproxKnnSel;
  if (selection_enabled && options.weighting.enable_selection) {
    keep = SelectNeighborCount(weights, options.weighting);
  }
  result.neighbors_discarded = search.neighbors.size() - keep;
  result.neighbors_used.assign(search.neighbors.begin(),
                               search.neighbors.begin() + keep);
  weights.resize(keep);
  result.weights = weights;

  // Stage 3: weighted rank aggregation of the retained seed lists
  // (segment-filtered first; empty filtered lists drop out together with
  // their weights).
  std::vector<rank::RankedList> lists;
  std::vector<double> list_weights;
  lists.reserve(keep);
  list_weights.reserve(keep);
  for (size_t i = 0; i < result.neighbors_used.size(); ++i) {
    rank::RankedList filtered = FilterToSegment(
        seed_lists_[result.neighbors_used[i].point_id], options.segment_mask);
    if (filtered.empty()) continue;
    lists.push_back(std::move(filtered));
    list_weights.push_back(weights[i]);
  }
  if (lists.empty()) {
    return Status::NotFound(
        "no retrieved seed list contains a segment member");
  }
  INFLEX_ASSIGN_OR_RETURN(
      result.seeds,
      rank::AggregateRankings(lists, list_weights, k, options.aggregation));
  result.aggregation_ms = agg_timer.ElapsedMillis();
  result.total_ms = total_timer.ElapsedMillis();
  return result;
}

Status InflexIndex::AddIndexPoint(const simplex::TopicDistribution& item,
                                  rank::RankedList seed_list) {
  if (item.num_topics() != num_topics()) {
    return Status::InvalidArgument("item dimension does not match the index");
  }
  if (seed_list.empty()) {
    return Status::InvalidArgument("empty pre-computed seed list");
  }
  INFLEX_RETURN_NOT_OK(rank::ValidateRankedList(seed_list));
  if (graph_ != nullptr) {
    for (rank::Item v : seed_list) {
      if (v >= graph_->num_nodes()) {
        return Status::InvalidArgument("seed list references unknown node");
      }
    }
  }
  INFLEX_ASSIGN_OR_RETURN(uint32_t id, tree_.Insert(item.probs()));
  INFLEX_CHECK_EQ(static_cast<size_t>(id), seed_lists_.size());
  seed_list_length_ = std::max(seed_list_length_, seed_list.size());
  seed_lists_.push_back(std::move(seed_list));
  return Status::OK();
}

Status InflexIndex::RemoveIndexPoints(std::span<const uint32_t> ids,
                                      std::vector<uint32_t>* old_to_new) {
  const size_t n = num_index_points();
  if (ids.empty()) {
    if (old_to_new != nullptr) {
      old_to_new->resize(n);
      std::iota(old_to_new->begin(), old_to_new->end(), 0u);
    }
    return Status::OK();
  }
  // Validate and build the dense renumbering before mutating anything, so a
  // bad request leaves the index untouched.
  std::vector<uint8_t> drop(n, 0);
  for (uint32_t id : ids) {
    if (id >= n) return Status::InvalidArgument("remove id out of range");
    drop[id] = 1;
  }
  std::vector<uint32_t> map(n, kDroppedIndexPoint);
  uint32_t next = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (drop[i] == 0) map[i] = next++;
  }
  if (next == 0) {
    return Status::InvalidArgument("cannot remove every index point");
  }
  INFLEX_RETURN_NOT_OK(tree_.RemovePoints(ids));
  // Compact seed lists in id order so list i stays aligned with tree point i
  // under the same dense renumbering the tree applied.
  size_t ell = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (map[i] == kDroppedIndexPoint) continue;
    if (map[i] != i) seed_lists_[map[i]] = std::move(seed_lists_[i]);
    ell = std::max(ell, seed_lists_[map[i]].size());
  }
  seed_lists_.resize(next);
  seed_list_length_ = ell;
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return Status::OK();
}

Status InflexIndex::Compact(const bbtree::BbTreeOptions& tree_options) {
  if (tree_.num_inserted() == 0 && tree_.num_removed() == 0) {
    return Status::OK();
  }
  std::vector<simplex::TopicVector> points;
  points.reserve(num_index_points());
  for (uint32_t i = 0; i < num_index_points(); ++i) {
    points.push_back(index_point(i));
  }
  INFLEX_ASSIGN_OR_RETURN(tree_,
                          bbtree::BbTree::Build(std::move(points),
                                                tree_options));
  return Status::OK();
}

Status InflexIndex::Save(const std::string& path) const {
  INFLEX_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::Open(path));
  INFLEX_RETURN_NOT_OK(WriteHeader(&w, kIndexMagic, kIndexVersion));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(num_index_points()));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(num_topics()));
  INFLEX_RETURN_NOT_OK(w.WritePod<uint64_t>(seed_list_length_));
  for (uint32_t i = 0; i < num_index_points(); ++i) {
    INFLEX_RETURN_NOT_OK(w.WriteVector(index_point(i)));
    INFLEX_RETURN_NOT_OK(w.WriteVector(seed_lists_[i]));
  }
  return w.Close();
}

Result<InflexIndex> InflexIndex::Load(const std::string& path,
                                      const graph::TopicGraph* graph,
                                      const bbtree::BbTreeOptions& tree_options) {
  INFLEX_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  INFLEX_RETURN_NOT_OK(CheckHeader(&r, kIndexMagic, kIndexVersion));
  uint64_t h = 0, z_count = 0, ell = 0;
  INFLEX_RETURN_NOT_OK(r.ReadPod(&h));
  INFLEX_RETURN_NOT_OK(r.ReadPod(&z_count));
  INFLEX_RETURN_NOT_OK(r.ReadPod(&ell));
  if (h == 0 || z_count == 0 || ell == 0) {
    return Status::IOError("corrupt index header");
  }
  std::vector<simplex::TopicVector> points;
  std::vector<rank::RankedList> lists;
  points.reserve(h);
  lists.reserve(h);
  for (uint64_t i = 0; i < h; ++i) {
    simplex::TopicVector point;
    rank::RankedList list;
    INFLEX_RETURN_NOT_OK(r.ReadVector(&point));
    INFLEX_RETURN_NOT_OK(r.ReadVector(&list));
    if (point.size() != z_count) {
      return Status::IOError("index point dimension mismatch");
    }
    points.push_back(std::move(point));
    lists.push_back(std::move(list));
  }
  return FromParts(graph, std::move(points), std::move(lists), tree_options);
}

}  // namespace core
}  // namespace inflex
