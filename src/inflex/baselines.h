#ifndef INFLEX_INFLEX_BASELINES_H_
#define INFLEX_INFLEX_BASELINES_H_

#include "graph/topic_graph.h"
#include "im/celfpp.h"
#include "im/snapshot_oracle.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace core {

/// \brief Options of the from-scratch influence-maximization computations
/// the paper compares against.
struct OfflineImOptions {
  /// Live-edge snapshots backing the CELF++ oracle (the paper used 5k plain
  /// Monte-Carlo trials; snapshots are the standard variance-reduced
  /// equivalent).
  size_t num_snapshots = 200;
  uint64_t seed = 31;
  im::SeedSelectionOptions selection;
};

/// "offline TIC": the ground truth of every experiment — CELF++ on the
/// item-specific IC instance of Eq. 1. This is what INFLEX approximates in
/// milliseconds and what took the authors ~60 hours per item at full scale.
Result<im::SeedSelectionResult> OfflineTicSeeds(
    const graph::TopicGraph& g, const simplex::TopicDistribution& item,
    size_t k, const OfflineImOptions& options = {});

/// "offline IC": the topic-blind baseline — CELF++ with a uniform topic
/// distribution (Table 2 shows it reaching less than half the TIC spread).
Result<im::SeedSelectionResult> OfflineIcSeeds(
    const graph::TopicGraph& g, size_t k, const OfflineImOptions& options = {});

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_BASELINES_H_
