#include "inflex/weighting.h"

#include <algorithm>
#include <cmath>

namespace inflex {
namespace core {

Result<std::vector<double>> ComputeImportanceWeights(
    const std::vector<bbtree::Neighbor>& neighbors,
    const WeightingOptions& options) {
  std::vector<double> weights;
  weights.reserve(neighbors.size());
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const double kl = neighbors[i].divergence;
    if (!(kl >= 0.0)) {
      return Status::InvalidArgument("negative divergence in neighbor list");
    }
    if (i > 0 && kl < neighbors[i - 1].divergence) {
      return Status::InvalidArgument(
          "neighbors must be sorted by ascending divergence");
    }
    double w = 0.0;
    switch (options.function) {
      case WeightFunction::kExponentialDecay: {
        if (!(options.exponential_scale > 0.0)) {
          return Status::InvalidArgument("exponential_scale must be positive");
        }
        w = std::exp(-kl / options.exponential_scale);
        break;
      }
      case WeightFunction::kPaperEq9: {
        if (!(options.kl_max > 0.0)) {
          return Status::InvalidArgument("kl_max must be positive");
        }
        const double clamped = std::min(kl, options.kl_max);
        w = (std::exp(options.kl_max) - std::exp(clamped)) /
            (std::exp(options.kl_max) - 1.0);
        break;
      }
    }
    weights.push_back(w);
  }
  return weights;
}

size_t SelectNeighborCount(const std::vector<double>& weights,
                           const WeightingOptions& options) {
  const size_t total = weights.size();
  if (!options.enable_selection || total <= 1) return total;
  const size_t t_min = std::max<size_t>(options.min_neighbors, 1);

  double prefix = weights[0];
  for (size_t t = 2; t <= total; ++t) {
    prefix += weights[t - 1];
    if (t - 1 < t_min) continue;  // keep at least min_neighbors
    if (prefix <= 0.0) return t - 1;
    const double normalized_t = weights[t - 1] / prefix;
    const double equal_share = 1.0 / static_cast<double>(t);
    bool marginal = false;
    switch (options.selection_rule) {
      case SelectionRule::kAbsoluteGap:
        marginal = equal_share - normalized_t >= options.selection_threshold;
        break;
      case SelectionRule::kRelativeShare:
        marginal = normalized_t < options.selection_ratio * equal_share;
        break;
    }
    if (marginal) {
      // The t-th neighbor's share is materially below an equal split: its
      // contribution (and everything farther away) is marginal.
      return t - 1;
    }
  }
  return total;
}

}  // namespace core
}  // namespace inflex
