#ifndef INFLEX_INFLEX_QUERY_ENGINE_H_
#define INFLEX_INFLEX_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "inflex/hit_accounting.h"
#include "inflex/inflex_index.h"
#include "inflex/query_cache.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace core {

/// \brief One TIM request as it arrives at the serving layer: the item's
/// topic mixture, the answer size k, and the evaluation options.
struct QueryRequest {
  simplex::TopicDistribution item;
  size_t k = 10;
  QueryOptions options;
};

/// \brief Per-batch (or cumulative) serving statistics: what an operator
/// watches on a dashboard — throughput, cache effectiveness, and the latency
/// distribution tail.
struct ServingStats {
  size_t num_requests = 0;
  size_t num_ok = 0;
  size_t num_failed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Wall-clock of the whole batch (not the sum of per-request latencies).
  double wall_ms = 0.0;
  /// num_requests / wall seconds.
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Latency samples behind the percentile fields: the batch size for
  /// per-batch stats; for cumulative_stats() the number of reservoir samples
  /// the percentiles were estimated from (see QueryEngine).
  size_t latency_samples = 0;
  /// Maintenance visibility (filled by cumulative_stats(); zero for
  /// per-batch stats): how many index generations have been published, the
  /// cache traffic since the LAST publish (each publish bumps the cache
  /// epoch, so this is the warm-up curve of the current generation), and the
  /// admission→publish latency of the maintenance pipeline (delta submitted
  /// to IndexMaintainer until its generation went live).
  uint64_t generation_swaps = 0;
  uint64_t epoch_cache_hits = 0;
  uint64_t epoch_cache_misses = 0;
  uint64_t publishes_timed = 0;
  double admit_to_publish_mean_ms = 0.0;
  double admit_to_publish_max_ms = 0.0;
  /// \brief Seed-precompute cost attributed to one oracle backend (filled by
  /// cumulative_stats(); empty for per-batch stats). One row per backend that
  /// ran at least one admitted-delta precompute on this engine — normally a
  /// single row, but an A/B bench driving two maintainers at one engine gets
  /// one row each.
  struct OraclePrecompute {
    std::string backend;
    uint64_t count = 0;
    double total_ns = 0.0;
    double max_ns = 0.0;
    double mean_ns() const {
      return count > 0 ? total_ns / static_cast<double>(count) : 0.0;
    }
  };
  std::vector<OraclePrecompute> precompute;
  /// Network-front-end overload visibility (filled by cumulative_stats();
  /// zero for per-batch stats and when no InflexServer feeds the engine):
  /// the admission queue's current depth and high-water mark, and how many
  /// requests were shed (kOverloaded) or expired waiting (kDeadlineExceeded)
  /// instead of reaching QueryBatch. Overload must be observable, not
  /// silent — shed requests never enter num_requests, so without these the
  /// dashboard would show a healthy engine inside a melting server.
  size_t admission_queue_depth = 0;
  size_t admission_queue_peak = 0;
  uint64_t shed_count = 0;
  uint64_t deadline_expired_count = 0;
  /// Hits / (hits + misses); 0 when the batch had no cache traffic.
  double hit_rate() const;
  /// Hit rate within the current cache epoch (since the last publish).
  double epoch_hit_rate() const;
  /// One-line dashboard rendering ("1000 req in 12.3 ms | 81300 QPS | ...").
  std::string ToString() const;
};

/// \brief Options for a QueryEngine.
struct QueryEngineOptions {
  /// Answer cache configuration (sharded; see QueryCache).
  QueryCache::Options cache;
  /// When false every request runs the index directly (useful to measure
  /// raw index throughput, or when answers must reflect a mutating index).
  bool enable_cache = true;
  /// Per-index-point hit accounting: every answered query credits the index
  /// points that backed it (QueryResult::neighbors_used), and the scores
  /// decay by `hit_decay` at each generation publish. The decay sweep in
  /// IndexMaintainer uses the scores to pick cold points for eviction;
  /// leave off when the index is static.
  bool enable_hit_accounting = false;
  /// Multiplier applied to accumulated hit scores at each publish (see
  /// PointHitAccounting::Options::decay).
  double hit_decay = 0.5;
  /// Striping width of the hit counters across serving threads.
  size_t hit_stripes = 8;
  /// Pool the batch API fans requests across; nullptr = the process-global
  /// pool. The engine does not own the pool.
  ThreadPool* pool = nullptr;
};

/// \brief The concurrent TIM serving layer: owns the sharded QueryCache in
/// front of an immutable InflexIndex *generation* and fans request batches
/// across a ThreadPool.
///
/// This is the paper's "online" half (§4) industrialized: the index answers
/// one query in ~1 ms, so serving millions of users is a scheduling-and-
/// caching problem, not an algorithmic one. All public methods are safe to
/// call concurrently from any number of threads.
///
/// Generations (RCU-style): the engine holds the current index generation
/// behind an atomic std::shared_ptr. Every query pins the generation for its
/// duration (a shared_ptr copy), so PublishIndex() can swap in a new
/// immutable index at any moment — in-flight queries keep reading the
/// generation they started on, and the old index is destroyed only when the
/// last reader drops its pin. Published generations must never be mutated
/// afterwards; an IndexMaintainer prepares each new generation on a private
/// copy before publishing. Each publication bumps the cache epoch, which is
/// part of every cache key: stale entries become unreachable instantly and
/// age out via LRU, with no Clear() stall on the serving path.
///
/// Determinism: answers are pure functions of (generation, item, k,
/// options), so batched parallel serving returns bit-identical results to a
/// serial replay against the same generation — the serving and maintenance
/// stress suites assert exactly that.
class QueryEngine {
 public:
  /// Serves from `index` as generation epoch 0. The engine shares ownership;
  /// the index must not be mutated after construction.
  explicit QueryEngine(std::shared_ptr<const InflexIndex> index,
                       const QueryEngineOptions& options = {});

  /// Non-owning convenience overload: the caller guarantees the index
  /// outlives the engine and every in-flight query.
  explicit QueryEngine(const InflexIndex* index,
                       const QueryEngineOptions& options = {});

  /// Serves one request through the cache (thread-safe). The result's
  /// `generation` field records the epoch of the generation that served it.
  Result<QueryResult> Query(const QueryRequest& request);

  /// Serves a batch by fanning the requests across the pool; results are
  /// positionally aligned with the requests. Per-batch stats (latency
  /// percentiles, hit rate, QPS) are written to `stats` when non-null and
  /// folded into cumulative_stats() either way.
  std::vector<Result<QueryResult>> QueryBatch(
      std::span<const QueryRequest> requests, ServingStats* stats = nullptr);

  /// Atomically swaps in the next immutable index generation and bumps the
  /// cache epoch (lazy invalidation). Returns the new epoch. In-flight
  /// queries finish against the generation they pinned; new queries see
  /// `next`. Thread-safe against queries and against other publishers.
  ///
  /// `old_to_new` is the point-id remap when `next` renumbered index points
  /// (an eviction publish): old_to_new[old_id] is the survivor's id in
  /// `next`, kDroppedIndexPoint for evicted points. It is threaded into the
  /// hit-accounting fold so decayed scores follow surviving points. Empty =
  /// pure growth (ids preserved, appended points start cold).
  uint64_t PublishIndex(std::shared_ptr<const InflexIndex> next,
                        std::span<const uint32_t> old_to_new = {});

  /// Folds one admission→publish latency observation into the cumulative
  /// maintenance stats (called by IndexMaintainer when a generation it
  /// prepared goes live; the clock starts at delta admission). Thread-safe.
  void RecordPublishLatency(double ms);

  /// Folds one seed-precompute duration into the per-backend attribution
  /// rows of cumulative_stats() (called by IndexMaintainer's precompute
  /// stage; `backend` is the oracle's name, e.g. "celfpp"/"ris"/"sketch").
  /// Thread-safe.
  void RecordPrecompute(const std::string& backend, double ns);

  /// Admission-control visibility hooks (called by the network front end;
  /// all thread-safe, lock-free). The engine never sheds by itself — these
  /// only mirror the server's bounded-queue decisions into ServingStats.
  void ReportAdmissionQueue(size_t depth);
  void RecordLoadShed(uint64_t count);
  void RecordDeadlineExpired(uint64_t count);

  /// Pins and returns the current generation (never null).
  std::shared_ptr<const InflexIndex> index_snapshot() const;

  /// Epoch of the current generation (0 until the first PublishIndex).
  uint64_t index_epoch() const;

  /// Drops every cached answer eagerly. Generation swaps do NOT need this —
  /// PublishIndex invalidates lazily via the epoch — but it remains useful
  /// when memory pressure matters more than hit rate.
  void InvalidateCache() { cache_.Clear(); }

  /// Totals over every request served so far. Counts and mean/max are exact
  /// (merged from the stats stripes). Latency percentiles are estimated from
  /// bounded per-stripe reservoirs (Vitter's Algorithm R) merged at read
  /// with each sample weighted by its stripe's observed count
  /// (seen_i / |R_i|), so the merge estimates one uniform reservoir over
  /// ALL batch-served requests even when the round-robin dealing left the
  /// stripes unevenly loaded (bursty arrivals, few large batches);
  /// `latency_samples` reports the merged occupancy (≤
  /// kLatencyReservoirCapacity). `wall_ms` is the engine-level serving span:
  /// total wall time during which ≥1 batch was in flight (first-batch-start
  /// to last-batch-end per busy period, summed over busy periods), so
  /// `qps` = requests / busy-time stays honest when N server workers batch
  /// concurrently — summing per-caller walls would count overlap N times and
  /// understate throughput by ~N.
  ServingStats cumulative_stats() const;

  /// Per-index-point hit scores of the current generation (decayed history +
  /// live counts; see PointHitAccounting). Empty when hit accounting is
  /// disabled.
  std::vector<double> HitScores() const;

  /// The hit-accounting layer, or nullptr when disabled.
  const PointHitAccounting* hit_accounting() const {
    return hit_accounting_.get();
  }

  QueryCache& cache() { return cache_; }
  const QueryEngineOptions& options() const { return options_; }

  /// Upper bound on latency reservoir size backing cumulative percentile
  /// estimates. 4096 uniform samples put the standard error of a p99
  /// estimate near 0.16% rank (sqrt(0.99*0.01/4096)) — plenty for a
  /// dashboard tail readout.
  static constexpr size_t kLatencyReservoirCapacity = 4096;

 private:
  /// One published index generation: the immutable index plus its epoch,
  /// swapped as a unit so a query can never pair an index with the wrong
  /// cache epoch.
  struct Generation {
    std::shared_ptr<const InflexIndex> index;
    uint64_t epoch = 0;
  };

  std::shared_ptr<const Generation> PinGeneration() const {
    return generation_.load(std::memory_order_acquire);
  }

  QueryEngineOptions options_;
  QueryCache cache_;

  std::atomic<std::shared_ptr<const Generation>> generation_;
  std::mutex publish_mu_;  // serializes PublishIndex epoch assignment

  std::atomic<uint64_t> generation_swaps_{0};

  /// Admission-control mirrors (see ReportAdmissionQueue and friends).
  std::atomic<size_t> admission_queue_depth_{0};
  std::atomic<size_t> admission_queue_peak_{0};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<uint64_t> deadline_expired_count_{0};

  /// nullptr unless options_.enable_hit_accounting.
  std::unique_ptr<PointHitAccounting> hit_accounting_;

  /// One stats stripe: each QueryBatch folds its whole batch into exactly
  /// one stripe (dealt round-robin), so N concurrent batchers contend on a
  /// stripe mutex only 1/kStatsStripes of the time instead of serializing on
  /// one engine-wide lock per batch. Cache-line separated; the reservoir is
  /// a per-stripe Algorithm-R sample of the stripe's share of the stream.
  struct alignas(64) StatsStripe {
    mutable std::mutex mu;
    uint64_t num_requests = 0;
    uint64_t num_ok = 0;
    uint64_t num_failed = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double latency_total_ms = 0.0;
    double latency_max_ms = 0.0;
    std::vector<double> reservoir;
    uint64_t seen = 0;
    Rng rng;
  };
  static constexpr size_t kStatsStripes = 16;
  static constexpr size_t kStripeReservoirCapacity =
      kLatencyReservoirCapacity / kStatsStripes;

  /// Engine-level serving span bookkeeping (see cumulative_stats): a batch
  /// entering when none was active starts the span clock; the last one out
  /// banks the busy period.
  void BeginBatchSpan();
  void EndBatchSpan();
  double ServingWallMs() const;

  std::vector<std::unique_ptr<StatsStripe>> stats_stripes_;
  std::atomic<uint64_t> stripe_rr_{0};

  mutable std::mutex span_mu_;
  size_t active_batches_ = 0;        // guarded by span_mu_
  Timer span_timer_;                 // guarded by span_mu_
  double accumulated_span_ms_ = 0.0;  // guarded by span_mu_

  mutable std::mutex stats_mu_;
  // Cache-counter baselines captured at the last publish: epoch-scoped hit
  // rate is (cache totals − baseline). Guarded as a PAIR by stats_mu_ so a
  // reader can never combine a hits baseline from one publish with a misses
  // baseline from another (lock order: publish_mu_ → stats_mu_).
  uint64_t epoch_hits_base_ = 0;    // guarded by stats_mu_
  uint64_t epoch_misses_base_ = 0;  // guarded by stats_mu_
  // Admission→publish latency aggregates (guarded by stats_mu_).
  uint64_t publishes_timed_ = 0;
  double publish_latency_total_ms_ = 0.0;
  double publish_latency_max_ms_ = 0.0;
  // Per-backend precompute attribution (guarded by stats_mu_). A handful of
  // entries at most, so linear lookup beats a map.
  std::vector<ServingStats::OraclePrecompute> precompute_;
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_QUERY_ENGINE_H_
