#ifndef INFLEX_INFLEX_QUERY_ENGINE_H_
#define INFLEX_INFLEX_QUERY_ENGINE_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "inflex/inflex_index.h"
#include "inflex/query_cache.h"
#include "util/thread_pool.h"

namespace inflex {
namespace core {

/// \brief One TIM request as it arrives at the serving layer: the item's
/// topic mixture, the answer size k, and the evaluation options.
struct QueryRequest {
  simplex::TopicDistribution item;
  size_t k = 10;
  QueryOptions options;
};

/// \brief Per-batch (or cumulative) serving statistics: what an operator
/// watches on a dashboard — throughput, cache effectiveness, and the latency
/// distribution tail.
struct ServingStats {
  size_t num_requests = 0;
  size_t num_ok = 0;
  size_t num_failed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Wall-clock of the whole batch (not the sum of per-request latencies).
  double wall_ms = 0.0;
  /// num_requests / wall seconds.
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Hits / (hits + misses); 0 when the batch had no cache traffic.
  double hit_rate() const;
  /// One-line dashboard rendering ("1000 req in 12.3 ms | 81300 QPS | ...").
  std::string ToString() const;
};

/// \brief Options for a QueryEngine.
struct QueryEngineOptions {
  /// Answer cache configuration (sharded; see QueryCache).
  QueryCache::Options cache;
  /// When false every request runs the index directly (useful to measure
  /// raw index throughput, or when answers must reflect a mutating index).
  bool enable_cache = true;
  /// Pool the batch API fans requests across; nullptr = the process-global
  /// pool. The engine does not own the pool.
  ThreadPool* pool = nullptr;
};

/// \brief The concurrent TIM serving layer: owns the sharded QueryCache in
/// front of an InflexIndex and fans request batches across a ThreadPool.
///
/// This is the paper's "online" half (§4) industrialized: the index answers
/// one query in ~1 ms, so serving millions of users is a scheduling-and-
/// caching problem, not an algorithmic one. All public methods are safe to
/// call concurrently from any number of threads; the index must not be
/// mutated (AddIndexPoint/Compact) while queries are in flight — mutate it
/// between batches and call InvalidateCache().
///
/// Determinism: answers are pure functions of (item, k, options), so batched
/// parallel serving returns bit-identical results to a serial loop — the
/// serving_test stress suite asserts exactly that.
class QueryEngine {
 public:
  /// The index must outlive the engine.
  explicit QueryEngine(const InflexIndex* index,
                       const QueryEngineOptions& options = {});

  /// Serves one request through the cache (thread-safe).
  Result<QueryResult> Query(const QueryRequest& request);

  /// Serves a batch by fanning the requests across the pool; results are
  /// positionally aligned with the requests. Per-batch stats (latency
  /// percentiles, hit rate, QPS) are written to `stats` when non-null and
  /// folded into cumulative_stats() either way.
  std::vector<Result<QueryResult>> QueryBatch(
      std::span<const QueryRequest> requests, ServingStats* stats = nullptr);

  /// Drops every cached answer; call after mutating the index.
  void InvalidateCache() { cache_.Clear(); }

  /// Totals over every request served so far. The latency fields hold the
  /// percentiles of the most recent batch (percentiles do not aggregate);
  /// wall_ms/qps aggregate across batches.
  ServingStats cumulative_stats() const;

  const InflexIndex& index() const { return *index_; }
  QueryCache& cache() { return cache_; }
  const QueryEngineOptions& options() const { return options_; }

 private:
  const InflexIndex* index_;
  QueryEngineOptions options_;
  QueryCache cache_;

  mutable std::mutex stats_mu_;
  ServingStats cumulative_;  // guarded by stats_mu_
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_QUERY_ENGINE_H_
