#include "inflex/index_points.h"

#include <algorithm>
#include <limits>

#include "cluster/kmeans.h"
#include "simplex/divergence.h"
#include "util/random.h"

namespace inflex {
namespace core {

Result<IndexPointSelection> SelectIndexPoints(
    const std::vector<simplex::TopicDistribution>& catalog,
    const IndexPointOptions& options) {
  if (catalog.empty()) {
    return Status::InvalidArgument("index-point selection needs a catalog");
  }
  if (options.num_index_points == 0) {
    return Status::InvalidArgument("num_index_points must be positive");
  }
  if (options.num_dirichlet_samples < options.num_index_points) {
    return Status::InvalidArgument(
        "need at least as many Dirichlet samples as index points");
  }

  std::vector<simplex::TopicVector> raw;
  raw.reserve(catalog.size());
  const size_t z_count = catalog.front().num_topics();
  for (const auto& item : catalog) {
    if (item.num_topics() != z_count) {
      return Status::InvalidArgument("catalog items disagree on dimension");
    }
    raw.push_back(item.probs());
  }

  IndexPointSelection selection;

  // Phase 1: maximum-likelihood Dirichlet (Minka 2000).
  INFLEX_ASSIGN_OR_RETURN(stats::Dirichlet fitted,
                          stats::FitDirichletMle(raw));
  selection.dirichlet_alpha = fitted.alpha();

  // Phase 2: sample the item space the catalog induces.
  Rng rng(options.seed);
  selection.samples = fitted.SampleMany(options.num_dirichlet_samples, &rng);

  // Phase 3: Bregman K-means++ — centroids become the index points.
  cluster::KMeansOptions kopts;
  kopts.num_clusters = options.num_index_points;
  kopts.max_iterations = options.kmeans_max_iterations;
  kopts.divergence = cluster::BregmanDivergenceKind::kKl;
  kopts.seed = rng.Next();
  INFLEX_ASSIGN_OR_RETURN(cluster::KMeansResult clustering,
                          cluster::KMeansPlusPlus(selection.samples, kopts));
  selection.points = std::move(clustering.centroids);
  return selection;
}

Result<size_t> SuggestIndexPointCount(
    const std::vector<simplex::TopicDistribution>& catalog,
    const IndexSizeCriterion& criterion) {
  if (catalog.empty()) {
    return Status::InvalidArgument("index sizing needs a catalog");
  }
  if (criterion.min_points == 0 ||
      criterion.min_points > criterion.max_points) {
    return Status::InvalidArgument("require 0 < min_points <= max_points");
  }
  if (criterion.quantile <= 0.0 || criterion.quantile > 1.0) {
    return Status::InvalidArgument("quantile must lie in (0, 1]");
  }
  if (!(criterion.target_divergence > 0.0)) {
    return Status::InvalidArgument("target_divergence must be positive");
  }
  if (criterion.validation_samples == 0) {
    return Status::InvalidArgument("validation_samples must be positive");
  }

  std::vector<simplex::TopicVector> raw;
  raw.reserve(catalog.size());
  for (const auto& item : catalog) raw.push_back(item.probs());
  INFLEX_ASSIGN_OR_RETURN(stats::Dirichlet fitted,
                          stats::FitDirichletMle(raw));

  Rng rng(criterion.seed);
  const std::vector<simplex::TopicVector> validation =
      fitted.SampleMany(criterion.validation_samples, &rng);
  // The quantile index of the NN-divergence order statistic to test.
  const size_t q_index = std::min(
      validation.size() - 1,
      static_cast<size_t>(criterion.quantile * (validation.size() - 1)));

  for (size_t h = criterion.min_points;; h *= 2) {
    h = std::min(h, criterion.max_points);
    const size_t train_n =
        std::min<size_t>(criterion.training_samples, 20 * h);
    const std::vector<simplex::TopicVector> training =
        fitted.SampleMany(std::max(train_n, h), &rng);
    cluster::KMeansOptions kopts;
    kopts.num_clusters = h;
    kopts.max_iterations = 15;
    kopts.divergence = cluster::BregmanDivergenceKind::kKl;
    kopts.seed = rng.Next();
    INFLEX_ASSIGN_OR_RETURN(cluster::KMeansResult clustering,
                            cluster::KMeansPlusPlus(training, kopts));

    std::vector<double> nn(validation.size());
    for (size_t i = 0; i < validation.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : clustering.centroids) {
        best = std::min(best, simplex::KlDivergence(c, validation[i]));
      }
      nn[i] = best;
    }
    std::nth_element(nn.begin(), nn.begin() + q_index, nn.end());
    if (nn[q_index] <= criterion.target_divergence ||
        h >= criterion.max_points) {
      return h;
    }
  }
}

}  // namespace core
}  // namespace inflex
