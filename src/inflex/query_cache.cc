#include "inflex/query_cache.h"

#include <cmath>
#include <cstring>

#include "util/timer.h"

namespace inflex {
namespace core {

QueryCache::QueryCache(const Options& options) : options_(options) {
  INFLEX_CHECK_GT(options_.capacity, 0u);
  INFLEX_CHECK_GE(options_.quantization, 0.0);
}

std::string QueryCache::MakeKey(const simplex::TopicDistribution& item,
                                size_t k, QueryStrategy strategy) const {
  std::string key;
  key.reserve(item.num_topics() * sizeof(uint32_t) + 16);
  if (options_.quantization > 0.0) {
    for (double p : item.probs()) {
      const auto cell =
          static_cast<uint32_t>(std::lround(p / options_.quantization));
      key.append(reinterpret_cast<const char*>(&cell), sizeof(cell));
    }
  } else {
    for (double p : item.probs()) {
      key.append(reinterpret_cast<const char*>(&p), sizeof(p));
    }
  }
  const auto k32 = static_cast<uint32_t>(k);
  const auto s32 = static_cast<uint32_t>(strategy);
  key.append(reinterpret_cast<const char*>(&k32), sizeof(k32));
  key.append(reinterpret_cast<const char*>(&s32), sizeof(s32));
  return key;
}

Result<QueryResult> QueryCache::Query(const InflexIndex& index,
                                      const simplex::TopicDistribution& item,
                                      size_t k,
                                      const QueryOptions& query_options) {
  Timer timer;
  const std::string key = MakeKey(item, k, query_options.strategy);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    QueryResult result = it->second->result;
    result.total_ms = timer.ElapsedMillis();
    return result;
  }
  ++misses_;
  INFLEX_ASSIGN_OR_RETURN(QueryResult result,
                          index.Query(item, k, query_options));
  lru_.push_front(Entry{key, result});
  entries_[key] = lru_.begin();
  if (entries_.size() > options_.capacity) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return result;
}

void QueryCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace core
}  // namespace inflex
