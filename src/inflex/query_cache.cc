#include "inflex/query_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <type_traits>

#include "util/timer.h"

namespace inflex {
namespace core {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
// Independent second lane: a different odd offset/multiplier pair so the two
// 64-bit halves of the key never cancel the same way.
constexpr uint64_t kLane2Offset = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kLane2Prime = 0xc2b2ae3d27d4eb4fULL;

/// FNV-1a over raw bytes.
uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
uint64_t FnvMixPod(uint64_t h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return FnvMix(h, &value, sizeof(value));
}

/// Streaming two-lane hash; word-at-a-time so the per-query key costs a few
/// multiplies per topic instead of a heap allocation plus two byte-wise
/// string hashes.
struct KeyHasher {
  uint64_t lo = kFnvOffset;
  uint64_t hi = kLane2Offset;
  void Mix64(uint64_t v) {
    lo = (lo ^ v) * kFnvPrime;
    lo ^= lo >> 29;
    hi = (hi ^ v) * kLane2Prime;
    hi ^= hi >> 31;
  }
};

/// Fingerprints every answer-shaping field of QueryOptions. Two option sets
/// with different fingerprints never share a cache entry — in particular a
/// segment-restricted query can never be answered from an unrestricted one
/// (or from a different segment), and knn_k / max_leaves / search and
/// weighting parameters all key separately.
uint64_t OptionsFingerprint(const QueryOptions& o) {
  uint64_t h = kFnvOffset;
  h = FnvMixPod(h, static_cast<uint32_t>(o.strategy));
  h = FnvMixPod(h, static_cast<uint64_t>(o.knn_k));
  h = FnvMixPod(h, static_cast<uint64_t>(o.max_leaves));
  h = FnvMixPod(h, o.search.epsilon_exact);
  h = FnvMixPod(h, o.search.ad_alpha);
  h = FnvMixPod(h, static_cast<uint64_t>(o.search.max_leaves));
  h = FnvMixPod(h, static_cast<uint8_t>(o.search.use_pruning));
  h = FnvMixPod(h, static_cast<uint8_t>(o.search.use_ad_early_stop));
  h = FnvMixPod(h, static_cast<uint32_t>(o.weighting.function));
  h = FnvMixPod(h, o.weighting.exponential_scale);
  h = FnvMixPod(h, o.weighting.kl_max);
  h = FnvMixPod(h, static_cast<uint8_t>(o.weighting.enable_selection));
  h = FnvMixPod(h, static_cast<uint32_t>(o.weighting.selection_rule));
  h = FnvMixPod(h, o.weighting.selection_threshold);
  h = FnvMixPod(h, o.weighting.selection_ratio);
  h = FnvMixPod(h, static_cast<uint64_t>(o.weighting.min_neighbors));
  h = FnvMixPod(h, static_cast<uint32_t>(o.aggregation.method));
  h = FnvMixPod(h, static_cast<uint8_t>(o.aggregation.use_weights));
  h = FnvMixPod(h, static_cast<uint8_t>(o.aggregation.local_kemenization));
  h = FnvMixPod(h, static_cast<uint64_t>(o.segment_mask.size()));
  if (!o.segment_mask.empty()) {
    h = FnvMix(h, o.segment_mask.data(), o.segment_mask.size());
  }
  return h;
}

/// Stable per-thread stripe index; hashes the thread id once per thread.
size_t ThreadStripe(size_t num_stripes) {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripe % num_stripes;
}

}  // namespace

QueryCache::QueryCache(const Options& options)
    : options_(options),
      hit_stripes_(kCounterStripes),
      miss_stripes_(kCounterStripes) {
  INFLEX_CHECK_GT(options_.capacity, 0u);
  INFLEX_CHECK_GE(options_.quantization, 0.0);
  const size_t num_shards =
      std::clamp<size_t>(options_.num_shards, 1, options_.capacity);
  per_shard_capacity_ = (options_.capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryCache::CacheKey QueryCache::MakeKey(const simplex::TopicDistribution& item,
                                         size_t k,
                                         const QueryOptions& query_options,
                                         uint64_t epoch) const {
  KeyHasher h;
  if (options_.quantization > 0.0) {
    for (double p : item.probs()) {
      h.Mix64(static_cast<uint64_t>(
          static_cast<uint32_t>(std::lround(p / options_.quantization))));
    }
  } else {
    for (double p : item.probs()) {
      uint64_t bits;
      std::memcpy(&bits, &p, sizeof(bits));
      h.Mix64(bits);
    }
  }
  // Topic-count guard: without it, [a, b] and [a, b, 0-cells...] could
  // collide once the zero cells mix to identity-like values.
  h.Mix64(static_cast<uint64_t>(item.num_topics()));
  h.Mix64(static_cast<uint64_t>(k));
  h.Mix64(OptionsFingerprint(query_options));
  h.Mix64(epoch);
  return CacheKey{h.lo, h.hi};
}

size_t QueryCache::ShardIndexForTesting(const simplex::TopicDistribution& item,
                                        size_t k,
                                        const QueryOptions& query_options,
                                        uint64_t epoch) const {
  const CacheKey key = MakeKey(item, k, query_options, epoch);
  return (key.lo >> 48) % shards_.size();
}

void QueryCache::BumpStripe(std::vector<CounterStripe>& stripes) {
  stripes[ThreadStripe(stripes.size())].value.fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t QueryCache::SumStripes(const std::vector<CounterStripe>& stripes) {
  uint64_t total = 0;
  for (const auto& s : stripes) {
    total += s.value.load(std::memory_order_acquire);
  }
  return total;
}

Result<QueryResult> QueryCache::Query(const InflexIndex& index,
                                      const simplex::TopicDistribution& item,
                                      size_t k,
                                      const QueryOptions& query_options,
                                      uint64_t epoch) {
  Timer timer;
  const CacheKey key = MakeKey(item, k, query_options, epoch);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      BumpStripe(hit_stripes_);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      QueryResult result = it->second->result;
      // This answer skipped the search/aggregation stages entirely: report
      // zero stage timings and stats rather than the original run's, and
      // flag the hit. Only total_ms reflects this serving's cost.
      result.similarity_search_ms = 0.0;
      result.aggregation_ms = 0.0;
      result.search_stats = bbtree::SearchStats{};
      result.from_cache = true;
      result.total_ms = timer.ElapsedMillis();
      return result;
    }
  }
  // Miss: run the index outside the shard lock so a slow query does not
  // serialize the shard. Concurrent misses on one key may duplicate work;
  // the answers are identical, so whichever insert lands last wins.
  BumpStripe(miss_stripes_);
  INFLEX_ASSIGN_OR_RETURN(QueryResult result,
                          index.Query(item, k, query_options));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Another thread computed the same cell while we ran: refresh it.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->result = result;
    } else {
      shard.lru.push_front(Entry{key, result});
      shard.entries[key] = shard.lru.begin();
      if (shard.entries.size() > per_shard_capacity_) {
        shard.entries.erase(shard.lru.back().key);
        shard.lru.pop_back();
      }
    }
  }
  return result;
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->entries.clear();
  }
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

QueryCache::CounterSnapshot QueryCache::counters() const {
  uint64_t h = hits();
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t m = misses();
    const uint64_t h2 = hits();
    if (h2 == h) return {h, m};
    h = h2;
  }
  // Counters moving too fast to bracket — return the freshest pair.
  return {h, misses()};
}

}  // namespace core
}  // namespace inflex
