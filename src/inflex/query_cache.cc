#include "inflex/query_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <type_traits>

#include "util/timer.h"

namespace inflex {
namespace core {

namespace {

/// FNV-1a over raw bytes; used to fold the query options into the cache key.
uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <typename T>
uint64_t FnvMixPod(uint64_t h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return FnvMix(h, &value, sizeof(value));
}

/// Fingerprints every answer-shaping field of QueryOptions. Two option sets
/// with different fingerprints never share a cache entry — in particular a
/// segment-restricted query can never be answered from an unrestricted one
/// (or from a different segment), and knn_k / max_leaves / search and
/// weighting parameters all key separately.
uint64_t OptionsFingerprint(const QueryOptions& o) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = FnvMixPod(h, static_cast<uint32_t>(o.strategy));
  h = FnvMixPod(h, static_cast<uint64_t>(o.knn_k));
  h = FnvMixPod(h, static_cast<uint64_t>(o.max_leaves));
  h = FnvMixPod(h, o.search.epsilon_exact);
  h = FnvMixPod(h, o.search.ad_alpha);
  h = FnvMixPod(h, static_cast<uint64_t>(o.search.max_leaves));
  h = FnvMixPod(h, static_cast<uint8_t>(o.search.use_pruning));
  h = FnvMixPod(h, static_cast<uint8_t>(o.search.use_ad_early_stop));
  h = FnvMixPod(h, static_cast<uint32_t>(o.weighting.function));
  h = FnvMixPod(h, o.weighting.exponential_scale);
  h = FnvMixPod(h, o.weighting.kl_max);
  h = FnvMixPod(h, static_cast<uint8_t>(o.weighting.enable_selection));
  h = FnvMixPod(h, static_cast<uint32_t>(o.weighting.selection_rule));
  h = FnvMixPod(h, o.weighting.selection_threshold);
  h = FnvMixPod(h, o.weighting.selection_ratio);
  h = FnvMixPod(h, static_cast<uint64_t>(o.weighting.min_neighbors));
  h = FnvMixPod(h, static_cast<uint32_t>(o.aggregation.method));
  h = FnvMixPod(h, static_cast<uint8_t>(o.aggregation.use_weights));
  h = FnvMixPod(h, static_cast<uint8_t>(o.aggregation.local_kemenization));
  h = FnvMixPod(h, static_cast<uint64_t>(o.segment_mask.size()));
  if (!o.segment_mask.empty()) {
    h = FnvMix(h, o.segment_mask.data(), o.segment_mask.size());
  }
  return h;
}

}  // namespace

QueryCache::QueryCache(const Options& options) : options_(options) {
  INFLEX_CHECK_GT(options_.capacity, 0u);
  INFLEX_CHECK_GE(options_.quantization, 0.0);
  const size_t num_shards =
      std::clamp<size_t>(options_.num_shards, 1, options_.capacity);
  per_shard_capacity_ = (options_.capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string QueryCache::MakeKey(const simplex::TopicDistribution& item,
                                size_t k, const QueryOptions& query_options,
                                uint64_t epoch) const {
  std::string key;
  key.reserve(item.num_topics() * sizeof(uint32_t) + 32);
  if (options_.quantization > 0.0) {
    for (double p : item.probs()) {
      const auto cell =
          static_cast<uint32_t>(std::lround(p / options_.quantization));
      key.append(reinterpret_cast<const char*>(&cell), sizeof(cell));
    }
  } else {
    for (double p : item.probs()) {
      key.append(reinterpret_cast<const char*>(&p), sizeof(p));
    }
  }
  const auto k64 = static_cast<uint64_t>(k);
  const uint64_t fp = OptionsFingerprint(query_options);
  key.append(reinterpret_cast<const char*>(&k64), sizeof(k64));
  key.append(reinterpret_cast<const char*>(&fp), sizeof(fp));
  key.append(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  return key;
}

QueryCache::Shard& QueryCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

Result<QueryResult> QueryCache::Query(const InflexIndex& index,
                                      const simplex::TopicDistribution& item,
                                      size_t k,
                                      const QueryOptions& query_options,
                                      uint64_t epoch) {
  Timer timer;
  const std::string key = MakeKey(item, k, query_options, epoch);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      QueryResult result = it->second->result;
      // This answer skipped the search/aggregation stages entirely: report
      // zero stage timings and stats rather than the original run's, and
      // flag the hit. Only total_ms reflects this serving's cost.
      result.similarity_search_ms = 0.0;
      result.aggregation_ms = 0.0;
      result.search_stats = bbtree::SearchStats{};
      result.from_cache = true;
      result.total_ms = timer.ElapsedMillis();
      return result;
    }
  }
  // Miss: run the index outside the shard lock so a slow query does not
  // serialize the shard. Concurrent misses on one key may duplicate work;
  // the answers are identical, so whichever insert lands last wins.
  misses_.fetch_add(1, std::memory_order_relaxed);
  INFLEX_ASSIGN_OR_RETURN(QueryResult result,
                          index.Query(item, k, query_options));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Another thread computed the same cell while we ran: refresh it.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->result = result;
    } else {
      shard.lru.push_front(Entry{key, result});
      shard.entries[key] = shard.lru.begin();
      if (shard.entries.size() > per_shard_capacity_) {
        shard.entries.erase(shard.lru.back().key);
        shard.lru.pop_back();
      }
    }
  }
  return result;
}

void QueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->entries.clear();
  }
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

QueryCache::CounterSnapshot QueryCache::counters() const {
  uint64_t h = hits_.load(std::memory_order_acquire);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint64_t m = misses_.load(std::memory_order_acquire);
    const uint64_t h2 = hits_.load(std::memory_order_acquire);
    if (h2 == h) return {h, m};
    h = h2;
  }
  // Counters moving too fast to bracket — return the freshest pair.
  return {h, misses_.load(std::memory_order_acquire)};
}

}  // namespace core
}  // namespace inflex
