#ifndef INFLEX_INFLEX_QUERY_CACHE_H_
#define INFLEX_INFLEX_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "inflex/inflex_index.h"

namespace inflex {
namespace core {

/// \brief LRU cache of TIM answers keyed by the quantized topic mixture.
///
/// Ad platforms see near-duplicate item descriptions constantly (advertisers
/// iterate on a campaign, re-submission after edits, A/B arms with the same
/// targeting). Queries landing in the same quantization cell reuse the
/// cached ranked list without touching the index, cutting the common-case
/// latency from ~1 ms to ~1 µs.
///
/// The cache key includes k and the strategy but NOT the rest of
/// QueryOptions — use one cache per option profile, and Clear() whenever the
/// underlying index changes (AddIndexPoint/Compact). Not thread-safe; wrap
/// externally for concurrent serving.
class QueryCache {
 public:
  struct Options {
    /// Maximum number of cached answers (LRU eviction beyond this).
    size_t capacity = 4096;
    /// Grid size per topic coordinate; two mixtures rounding to the same
    /// grid cell share an answer. Figure 4's KL↔Kendall correlation makes
    /// small cells safe: at 0.01 the within-cell divergence is ≪ the
    /// divergence to the nearest index point. 0 keys on exact bytes.
    double quantization = 0.01;
  };

  /// Default options (NSDMI defaults above).
  QueryCache() : QueryCache(Options{}) {}
  explicit QueryCache(const Options& options);

  /// Cache-through query: returns the cached answer for the cell when
  /// present, otherwise runs index.Query(), caches and returns it.
  /// `QueryResult::total_ms` reflects the actual (cached or computed) cost.
  Result<QueryResult> Query(const InflexIndex& index,
                            const simplex::TopicDistribution& item, size_t k,
                            const QueryOptions& query_options = {});

  /// Drops every entry (call after mutating the index).
  void Clear();

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::string MakeKey(const simplex::TopicDistribution& item, size_t k,
                      QueryStrategy strategy) const;

  Options options_;
  // LRU list, most recent at the front; map points into the list.
  struct Entry {
    std::string key;
    QueryResult result;
  };
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_QUERY_CACHE_H_
