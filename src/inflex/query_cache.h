#ifndef INFLEX_INFLEX_QUERY_CACHE_H_
#define INFLEX_INFLEX_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "inflex/inflex_index.h"

namespace inflex {
namespace core {

/// \brief Thread-safe sharded LRU cache of TIM answers keyed by the quantized
/// topic mixture plus a fingerprint of the query options.
///
/// Ad platforms see near-duplicate item descriptions constantly (advertisers
/// iterate on a campaign, re-submission after edits, A/B arms with the same
/// targeting). Queries landing in the same quantization cell reuse the
/// cached ranked list without touching the index, cutting the common-case
/// latency from ~1 ms to ~1 µs.
///
/// The cache key covers k and every answer-shaping field of QueryOptions
/// (strategy, knn_k, max_leaves, search/weighting/aggregation parameters and
/// the segment mask), so one cache can serve heterogeneous traffic. The key
/// additionally carries the caller-supplied index `epoch`: when the serving
/// layer publishes a new index generation it simply queries under the next
/// epoch and every stale entry becomes unreachable — lazy invalidation that
/// never stalls concurrent readers the way an eager Clear() would (stale
/// entries age out through per-shard LRU eviction). Callers that mutate an
/// index in place without an epoch scheme should still Clear().
///
/// Key representation: one streaming pass over the quantized mixture + the
/// options fingerprint produces a 128-bit hash (two independently mixed
/// 64-bit lanes). That hash IS the key — no per-query std::string is
/// allocated, the shard index comes from the high bits and the map bucket
/// from the low bits, so each lookup hashes the query exactly once. A
/// 128-bit accidental collision (~2^-64 per pair) is far below the rate of
/// any other failure mode; inputs are not adversarial here.
///
/// Concurrency: safe for concurrent Query/Clear/size from any number of
/// threads. Entries are striped across `num_shards` independent LRU shards
/// (shard = key hash), each behind its own mutex, so concurrent queries only
/// contend when they land on the same shard; hit/miss counters are striped
/// relaxed atomics (one stripe per cache line) summed at read, so the
/// counters themselves never bounce one cache line between serving threads.
/// On a miss the index query runs outside any lock — two threads missing on
/// the same key may both compute the answer (last writer wins), which is
/// benign because answers are deterministic functions of the key.
class QueryCache {
 public:
  struct Options {
    /// Maximum number of cached answers across all shards (per-shard LRU
    /// eviction beyond capacity/num_shards).
    size_t capacity = 4096;
    /// Grid size per topic coordinate; two mixtures rounding to the same
    /// grid cell share an answer. Figure 4's KL↔Kendall correlation makes
    /// small cells safe: at 0.01 the within-cell divergence is ≪ the
    /// divergence to the nearest index point. 0 keys on exact bytes.
    double quantization = 0.01;
    /// Mutex-striping width. Clamped to [1, capacity]; the default keeps
    /// shard contention negligible for dozens of serving threads. Use 1 for
    /// strict global LRU order (e.g. in eviction tests).
    size_t num_shards = 16;
  };

  /// Default options (NSDMI defaults above).
  QueryCache() : QueryCache(Options{}) {}
  explicit QueryCache(const Options& options);

  /// Cache-through query: returns the cached answer for the cell when
  /// present, otherwise runs index.Query(), caches and returns it.
  /// `QueryResult::total_ms` reflects the actual (cached or computed) cost;
  /// on a hit, `from_cache` is set and the per-stage timings/search stats
  /// are zeroed (those stages did not run for this answer). `epoch` is the
  /// generation of `index` and is folded into the key — pass the epoch
  /// pinned together with the index so an answer computed against one
  /// generation can never serve a query routed to another.
  Result<QueryResult> Query(const InflexIndex& index,
                            const simplex::TopicDistribution& item, size_t k,
                            const QueryOptions& query_options = {},
                            uint64_t epoch = 0);

  /// Drops every entry (call after mutating the index).
  void Clear();

  /// Total entries across shards (a point-in-time sum under concurrency).
  size_t size() const;
  uint64_t hits() const { return SumStripes(hit_stripes_); }
  uint64_t misses() const { return SumStripes(miss_stripes_); }

  /// One hit/miss pair sampled together.
  struct CounterSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Samples both counters as a pair: the hit count is re-read until it is
  /// stable across the miss read (bounded retries), so under a quiescent or
  /// slowly-moving cache the pair corresponds to one instant. The counters
  /// are striped relaxed atomics on the serving hot path, so under heavy
  /// concurrent traffic the pair can still straddle a handful of in-flight
  /// requests — callers must treat derived epoch-scoped readouts as
  /// estimates and clamp subtractions (see QueryEngine::cumulative_stats).
  CounterSnapshot counters() const;

  size_t num_shards() const { return shards_.size(); }

  /// Shard index the given query would land on. Test seam: the satellite
  /// regression suite pins shard selection as a stable function of
  /// (item, k, options, epoch) across the single-pass key hash.
  size_t ShardIndexForTesting(const simplex::TopicDistribution& item, size_t k,
                              const QueryOptions& query_options,
                              uint64_t epoch) const;

 private:
  /// 128-bit streaming key hash (see class comment). `lo` doubles as the
  /// unordered_map hash; `hi` exists to push accidental collisions below
  /// any practical concern.
  struct CacheKey {
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool operator==(const CacheKey& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return static_cast<size_t>(k.lo);
    }
  };

  struct Entry {
    CacheKey key;
    QueryResult result;
  };
  /// One mutex-striped LRU segment; keys are assigned by hash.
  struct Shard {
    std::mutex mu;
    // LRU list, most recent at the front; map points into the list.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        entries;
  };

  /// One relaxed counter per cache line (see class comment).
  struct alignas(64) CounterStripe {
    std::atomic<uint64_t> value{0};
  };
  static constexpr size_t kCounterStripes = 16;
  static void BumpStripe(std::vector<CounterStripe>& stripes);
  static uint64_t SumStripes(const std::vector<CounterStripe>& stripes);

  CacheKey MakeKey(const simplex::TopicDistribution& item, size_t k,
                   const QueryOptions& query_options, uint64_t epoch) const;
  Shard& ShardFor(const CacheKey& key) {
    // High bits pick the shard; the map consumes the low bits, so shard and
    // bucket selection stay decorrelated.
    return *shards_[(key.lo >> 48) % shards_.size()];
  }

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::vector<CounterStripe> hit_stripes_;
  mutable std::vector<CounterStripe> miss_stripes_;
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_QUERY_CACHE_H_
