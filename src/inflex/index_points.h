#ifndef INFLEX_INFLEX_INDEX_POINTS_H_
#define INFLEX_INFLEX_INDEX_POINTS_H_

#include <vector>

#include "simplex/topic_distribution.h"
#include "stats/dirichlet.h"
#include "util/status.h"

namespace inflex {
namespace core {

/// \brief Options for index-point selection (§3.1).
struct IndexPointOptions {
  /// Number h of index points (K-means++ centroids).
  size_t num_index_points = 1000;
  /// Samples drawn from the fitted Dirichlet before clustering (the paper
  /// uses 100k).
  size_t num_dirichlet_samples = 100000;
  /// K-means sweeps over the sample.
  int kmeans_max_iterations = 30;
  uint64_t seed = 5;
};

/// \brief Output of the three-phase selection pipeline, keeping the
/// intermediate artifacts Figure 3 visualizes.
struct IndexPointSelection {
  /// Hyper-parameters α of the maximum-likelihood Dirichlet fitted to the
  /// catalog (Minka's generalized Newton iteration).
  std::vector<double> dirichlet_alpha;
  /// The Dirichlet sample the centroids were clustered from.
  std::vector<simplex::TopicVector> samples;
  /// The h selected index points (K-means++ centroids).
  std::vector<simplex::TopicVector> points;
};

/// Runs the paper's index-point selection: fit Dirichlet(α) to the catalog
/// by maximum likelihood, draw `num_dirichlet_samples` points from it, and
/// keep the h Bregman K-means++ centroids — the compromise between
/// space-based and fully data-driven indexing discussed in §3.1.
/// Fails on an empty catalog or h = 0.
Result<IndexPointSelection> SelectIndexPoints(
    const std::vector<simplex::TopicDistribution>& catalog,
    const IndexPointOptions& options);

/// \brief Accuracy criterion for the automatic choice of the index size h
/// (the paper's §6 future work: "automatic determination of the number of
/// items to index for maintaining the accuracy of the framework").
///
/// Rationale: Figure 4 shows seed-list disagreement grows monotonically
/// with KL divergence, so bounding the divergence from future queries to
/// their nearest index point bounds the answer error. The criterion asks
/// that a chosen quantile of held-out catalog-like queries lie within
/// `target_divergence` of an index point.
struct IndexSizeCriterion {
  /// Maximum acceptable D_KL(nearest index point ‖ query).
  double target_divergence = 0.25;
  /// Fraction of validation queries that must satisfy the target.
  double quantile = 0.9;
  /// Search range; the result is the smallest power-of-two-scaled h in
  /// [min_points, max_points] meeting the criterion (max_points when none
  /// does).
  size_t min_points = 16;
  size_t max_points = 4096;
  /// Held-out queries drawn from the fitted Dirichlet.
  size_t validation_samples = 1000;
  /// Training sample used for clustering candidates (per candidate h the
  /// training size is min(20·h, this)).
  size_t training_samples = 20000;
  uint64_t seed = 29;
};

/// Suggests the number of index points h: doubles h from min_points until
/// the coverage criterion holds on held-out Dirichlet samples. Each
/// candidate costs one K-means++ run (no influence maximization), so this
/// is cheap relative to the seed-list precompute it sizes.
Result<size_t> SuggestIndexPointCount(
    const std::vector<simplex::TopicDistribution>& catalog,
    const IndexSizeCriterion& criterion = {});

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_INDEX_POINTS_H_
