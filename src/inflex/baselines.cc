#include "inflex/baselines.h"

namespace inflex {
namespace core {

Result<im::SeedSelectionResult> OfflineTicSeeds(
    const graph::TopicGraph& g, const simplex::TopicDistribution& item,
    size_t k, const OfflineImOptions& options) {
  if (item.num_topics() != g.num_topics()) {
    return Status::InvalidArgument("item dimension does not match the graph");
  }
  const graph::ArcProbabilities probs = g.ItemArcProbabilities(item);
  im::SnapshotSpreadOracle::Options oopts;
  oopts.num_snapshots = options.num_snapshots;
  oopts.seed = options.seed;
  INFLEX_ASSIGN_OR_RETURN(im::SnapshotSpreadOracle oracle,
                          im::SnapshotSpreadOracle::Create(g, probs, oopts));
  return im::SelectSeedsCelfPp(&oracle, k, options.selection);
}

Result<im::SeedSelectionResult> OfflineIcSeeds(const graph::TopicGraph& g,
                                               size_t k,
                                               const OfflineImOptions& options) {
  return OfflineTicSeeds(
      g, simplex::TopicDistribution::Uniform(g.num_topics()), k, options);
}

}  // namespace core
}  // namespace inflex
