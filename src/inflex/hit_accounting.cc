#include "inflex/hit_accounting.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "inflex/inflex_index.h"
#include "util/check.h"

namespace inflex {
namespace core {

namespace {

/// Stable per-thread stripe assignment: hashing the thread id once per
/// thread spreads serving threads across stripes without any coordination.
size_t ThreadStripe(size_t num_stripes) {
  static thread_local const size_t salt =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return salt % num_stripes;
}

}  // namespace

uint64_t PointHitAccounting::StripeSet::LiveCount(uint32_t id) const {
  uint64_t total = 0;
  for (size_t s = 0; s < num_stripes; ++s) {
    total += counts[s * num_points + id].load(std::memory_order_relaxed);
  }
  return total;
}

std::shared_ptr<const PointHitAccounting::StripeSet>
PointHitAccounting::MakeSet(uint64_t epoch, size_t num_points) const {
  auto set = std::make_shared<StripeSet>();
  set->epoch = epoch;
  set->num_points = num_points;
  set->num_stripes = options_.num_stripes;
  const size_t total = set->num_stripes * num_points;
  set->counts = std::make_unique<std::atomic<uint64_t>[]>(total);
  for (size_t i = 0; i < total; ++i) {
    set->counts[i].store(0, std::memory_order_relaxed);
  }
  return set;
}

PointHitAccounting::PointHitAccounting(size_t num_points,
                                       const Options& options)
    : options_(options) {
  INFLEX_CHECK_GT(num_points, 0u);
  options_.num_stripes = std::max<size_t>(options_.num_stripes, 1);
  options_.decay = std::clamp(options_.decay, 0.0, 1.0);
  scores_.assign(num_points, 0.0);
  live_.store(MakeSet(0, num_points), std::memory_order_release);
}

void PointHitAccounting::Record(uint64_t epoch,
                                std::span<const bbtree::Neighbor> backing) {
  const std::shared_ptr<const StripeSet> set =
      live_.load(std::memory_order_acquire);
  // An answer computed against a superseded generation carries point ids of
  // that generation's numbering; crediting them against the live tally would
  // corrupt neighbors after a renumbering, so the observation is dropped.
  if (set->epoch != epoch) return;
  std::atomic<uint64_t>* stripe =
      set->counts.get() + ThreadStripe(set->num_stripes) * set->num_points;
  for (const bbtree::Neighbor& n : backing) {
    if (n.point_id < set->num_points) {
      stripe[n.point_id].fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void PointHitAccounting::Fold(uint64_t new_epoch, size_t new_num_points,
                              std::span<const uint32_t> old_to_new) {
  INFLEX_CHECK_GT(new_num_points, 0u);
  std::lock_guard<std::mutex> lock(fold_mu_);
  const std::shared_ptr<const StripeSet> old_set =
      live_.load(std::memory_order_acquire);
  // The remap may be larger than the tally when the same publish also added
  // points (the publisher remaps base + freshly inserted ids); the extra
  // entries describe points this tally never saw, which start at score 0.
  INFLEX_CHECK(old_to_new.empty() || old_to_new.size() >= old_set->num_points);
  std::vector<double> next(new_num_points, 0.0);
  for (uint32_t id = 0; id < old_set->num_points; ++id) {
    const uint32_t new_id =
        old_to_new.empty() ? id : old_to_new[id];
    if (new_id == kDroppedIndexPoint ||
        static_cast<size_t>(new_id) >= new_num_points) {
      continue;  // evicted — its history dies with it
    }
    next[new_id] = options_.decay * scores_[id] +
                   static_cast<double>(old_set->LiveCount(id));
  }
  scores_ = std::move(next);
  // Records racing this swap either land on the old set (their counts were
  // already folded or are lost — bounded, advisory) or see the new epoch.
  live_.store(MakeSet(new_epoch, new_num_points), std::memory_order_release);
}

std::vector<double> PointHitAccounting::HitScores() const {
  std::lock_guard<std::mutex> lock(fold_mu_);
  const std::shared_ptr<const StripeSet> set =
      live_.load(std::memory_order_acquire);
  std::vector<double> out(scores_.begin(), scores_.end());
  INFLEX_CHECK_EQ(out.size(), set->num_points);
  for (uint32_t id = 0; id < set->num_points; ++id) {
    out[id] += static_cast<double>(set->LiveCount(id));
  }
  return out;
}

uint64_t PointHitAccounting::epoch() const {
  return live_.load(std::memory_order_acquire)->epoch;
}

size_t PointHitAccounting::num_points() const {
  return live_.load(std::memory_order_acquire)->num_points;
}

}  // namespace core
}  // namespace inflex
