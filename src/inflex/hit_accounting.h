#ifndef INFLEX_INFLEX_HIT_ACCOUNTING_H_
#define INFLEX_INFLEX_HIT_ACCOUNTING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "bbtree/bbtree.h"

namespace inflex {
namespace core {

/// \brief Lock-free per-index-point hit accounting for the serving layer.
///
/// Every answered query reports which index points backed it
/// (QueryResult::neighbors_used); the eviction sweep wants a per-point
/// "how much is this point earning its keep" signal that decays over time so
/// points that were hot a hundred generations ago do not stay protected
/// forever. This class keeps that signal without touching the serving hot
/// path with a lock:
///
///  - The *live* tally is an RCU-swapped StripeSet: one plain array of
///    relaxed atomic counters per stripe, one slot per index point of the
///    current generation. Record() hashes the calling thread onto a stripe
///    and does one fetch_add per backing point — no lock, no false sharing
///    between serving threads on different stripes.
///  - At every generation publish, Fold() (called under the engine's publish
///    lock) folds the live tally into the long-run score with exponential
///    decay — score'[new_id] = decay · score[old_id] + live_count[old_id] —
///    threading the publisher's old→new id remap through so scores follow
///    surviving points across evictions, and swaps in a fresh zeroed
///    StripeSet tagged with the new epoch.
///  - Record() drops observations whose generation epoch does not match the
///    live StripeSet (a query that pinned the previous generation finishing
///    after the swap). Accounting is advisory: losing a handful of in-flight
///    observations at a swap boundary is bounded and harmless, whereas
///    crediting them to the wrong point id after a renumbering would not be.
///
/// HitScores() returns score + live counts per current point id — the
/// decay sweep's input. Thread-safe throughout.
class PointHitAccounting {
 public:
  struct Options {
    /// Multiplier applied to accumulated scores at each generation publish.
    /// 0 forgets everything each generation; 1 never forgets.
    double decay = 0.5;
    /// Counter striping width across serving threads.
    size_t num_stripes = 8;
  };

  /// Starts accounting for `num_points` index points at epoch 0.
  explicit PointHitAccounting(size_t num_points)
      : PointHitAccounting(num_points, Options()) {}
  PointHitAccounting(size_t num_points, const Options& options);

  /// Credits one answered query to the index points that backed it. Drops
  /// the observation when `epoch` is not the live epoch. Lock-free.
  void Record(uint64_t epoch, std::span<const bbtree::Neighbor> backing);

  /// Folds the live tally into the decayed scores and swaps in a fresh
  /// tally for `new_epoch` over `new_num_points` points. `old_to_new` maps
  /// old point ids to their ids in the new generation (kDroppedIndexPoint
  /// entries discard that point's score); it may be larger than the tally
  /// when the publish also appended points. Empty = identity (pure growth:
  /// surviving ids unchanged, appended points start at score 0). Call under
  /// the publisher's serialization (one Fold at a time); concurrent
  /// Record/HitScores calls stay safe.
  void Fold(uint64_t new_epoch, size_t new_num_points,
            std::span<const uint32_t> old_to_new);

  /// Decayed score + live (un-folded) counts per current point id.
  std::vector<double> HitScores() const;

  /// Epoch of the live tally.
  uint64_t epoch() const;

  size_t num_points() const;

 private:
  struct StripeSet {
    uint64_t epoch = 0;
    size_t num_points = 0;
    size_t num_stripes = 0;
    /// num_stripes × num_points relaxed counters, stripe-major.
    std::unique_ptr<std::atomic<uint64_t>[]> counts;

    uint64_t LiveCount(uint32_t id) const;
  };

  std::shared_ptr<const StripeSet> MakeSet(uint64_t epoch,
                                           size_t num_points) const;

  Options options_;
  std::atomic<std::shared_ptr<const StripeSet>> live_;
  mutable std::mutex fold_mu_;
  std::vector<double> scores_;  // guarded by fold_mu_
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_HIT_ACCOUNTING_H_
