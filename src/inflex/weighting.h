#ifndef INFLEX_INFLEX_WEIGHTING_H_
#define INFLEX_INFLEX_WEIGHTING_H_

#include <vector>

#include "bbtree/bbtree.h"
#include "simplex/divergence.h"
#include "util/status.h"

namespace inflex {
namespace core {

/// How a neighbor's KL divergence from the query maps to its rank-
/// aggregation importance weight (§4.2, Eq. 9).
enum class WeightFunction {
  /// w = exp(−KL / scale). The library default: with the paper's KL_max
  /// (divergence between ε-smoothed simplex corners ≈ 27.6) Eq. 9 assigns
  /// every realistic neighbor a weight within 1e−10 of 1.0, making both the
  /// weighting and the neighbor-selection rule inert; exponential decay
  /// preserves the stated intent ("the closer a point, the more predominant
  /// its role"). Compared against Eq. 9 in bench_ablation_weights.
  kExponentialDecay,
  /// The paper's Eq. 9 with the denominator corrected to e^{KL_max} − 1 so
  /// the codomain is [0, 1] as stated (as printed the denominator is
  /// 1 − e^{−KL_max}, giving W(0) = e^{KL_max} ≫ 1). See DESIGN.md §5.
  kPaperEq9,
};

/// How the automatic neighbor-count selection decides that the t-th
/// neighbor "contributes only marginally" (§4.2).
enum class SelectionRule {
  /// Stop at the first t whose normalized weight w̃_t falls below the equal
  /// share 1/t by at least `selection_threshold` — the paper's printed rule
  /// (sign-corrected, see DESIGN.md §5). With any smoothly decaying weight
  /// function this fires almost immediately, keeping only 2-3 lists.
  kAbsoluteGap,
  /// Stop at the first t whose normalized weight falls below
  /// `selection_ratio` × (1/t). Robust to smooth decay: it keeps every
  /// neighbor pulling at least that fraction of an equal share and cuts the
  /// far-away tail — matching the paper's *intent* ("prune lists that
  /// contribute only marginally") with discriminative weights. Default.
  kRelativeShare,
};

/// \brief Importance-weighting and neighbor-selection options.
struct WeightingOptions {
  WeightFunction function = WeightFunction::kExponentialDecay;
  /// Decay scale of kExponentialDecay. A mild decay aggregates by consensus
  /// (sharper decays over-trust the single closest list), while still being
  /// discriminative enough for the neighbor selection below to prune the
  /// far tail — which is what gives INFLEX its run-time edge over the plain
  /// K-NN strategies (Fig. 7).
  double exponential_scale = 1.0;
  /// KL_max of kPaperEq9; defaults to the smoothed-corner bound.
  double kl_max = simplex::KlMaxBound();
  /// Enable the automatic selection of how many neighbors to aggregate.
  bool enable_selection = true;
  SelectionRule selection_rule = SelectionRule::kRelativeShare;
  /// Threshold of the kAbsoluteGap rule (the paper's 0.005).
  double selection_threshold = 0.005;
  /// Share fraction of the kRelativeShare rule: a neighbor is kept while
  /// its weight stays above this fraction of the running average weight.
  /// 0.9 keeps the ~5-10 dominant lists, reproducing the paper's Figure 9
  /// profile (INFLEX: near-best spread at well under half the exact-search
  /// time).
  double selection_ratio = 0.9;
  /// Never select fewer than this many neighbors (when available).
  size_t min_neighbors = 2;
};

/// Computes one importance weight per retrieved neighbor. Neighbors must be
/// sorted by ascending divergence (as every search returns them); weights
/// are therefore non-increasing. Fails on negative divergences or an
/// unusable configuration (non-positive scale / kl_max).
Result<std::vector<double>> ComputeImportanceWeights(
    const std::vector<bbtree::Neighbor>& neighbors,
    const WeightingOptions& options);

/// The automatic neighbor-count selection of §4.2: scanning neighbors from
/// the largest weight down, stop at the first t (> min_neighbors) whose
/// normalized weight w̃_t is "marginal" under the configured SelectionRule,
/// and keep the t−1 neighbors before it. Returns weights.size() when the
/// rule never fires.
///
/// NOTE: the paper prints its test as "w̃_t − 1/t ≥ 0.005", which can never
/// fire because w̃_t, the smallest normalized weight among the first t, is
/// ≤ 1/t by construction; kAbsoluteGap is the sign-corrected version and
/// kRelativeShare the default (DESIGN.md §5).
size_t SelectNeighborCount(const std::vector<double>& weights,
                           const WeightingOptions& options);

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_WEIGHTING_H_
