#ifndef INFLEX_INFLEX_INFLEX_INDEX_H_
#define INFLEX_INFLEX_INFLEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bbtree/bbtree.h"
#include "graph/topic_graph.h"
#include "inflex/index_points.h"
#include "inflex/weighting.h"
#include "rank/aggregators.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace inflex {
namespace core {

/// Query-evaluation strategies: INFLEX proper plus the retrieval baselines
/// the paper compares in Figures 6-9.
enum class QueryStrategy {
  /// Algorithm 1 search (ε-exact + AD early stop + pruning) followed by
  /// automatic neighbor selection and weighted aggregation.
  kInflex,
  /// Exact K-NN via branch-and-bound, weighted aggregation, no selection.
  kExactKnn,
  /// Leaf-bounded approximate K-NN, weighted aggregation, no selection.
  kApproxKnn,
  /// Leaf-bounded approximate K-NN + automatic neighbor selection.
  kApproxKnnSel,
  /// AD-early-stopped search without the neighbor-selection step.
  kApproxAd,
};

const char* QueryStrategyName(QueryStrategy s);

/// Sentinel in RemoveIndexPoints' old→new id remap for ids that were dropped.
inline constexpr uint32_t kDroppedIndexPoint = UINT32_MAX;

/// \brief Options governing one TIM query evaluation.
struct QueryOptions {
  QueryStrategy strategy = QueryStrategy::kInflex;
  /// K of the K-NN-based strategies (the paper found K = 10 best).
  size_t knn_k = 10;
  /// Leaf budget of the approximate strategies (paper: 5).
  size_t max_leaves = 5;
  /// Algorithm 1 parameters (ε-exact threshold, AD confidence, pruning).
  bbtree::InflexSearchOptions search;
  /// Importance weighting + automatic neighbor selection.
  WeightingOptions weighting;
  /// Rank-aggregation configuration (default: weighted Copeland with Local
  /// Kemenization — the best setting in Table 1).
  rank::AggregationOptions aggregation;
  /// Segment-targeted campaigns (the paper's §6 future-work query type):
  /// when non-empty, one entry per node; only nodes with a non-zero entry
  /// may appear in the answer. Pre-computed seed lists are filtered to the
  /// segment before aggregation, so the ranking among segment members is
  /// preserved. Queries whose retrieved lists contain no segment member
  /// fail with NotFound.
  std::vector<uint8_t> segment_mask;
};

/// \brief Outcome of one TIM query.
struct QueryResult {
  /// The aggregated ranked seed list (size ≤ k; can exceed ℓ when the union
  /// of retrieved lists is large enough).
  rank::RankedList seeds;
  /// True when the ε-exact shortcut answered the query from a single list.
  bool epsilon_exact = false;
  /// Neighbors that entered the aggregation, closest first.
  std::vector<bbtree::Neighbor> neighbors_used;
  /// Their importance weights (empty for an ε-exact answer).
  std::vector<double> weights;
  /// Retrieved-but-discarded count (automatic selection).
  size_t neighbors_discarded = 0;
  bbtree::SearchStats search_stats;
  double similarity_search_ms = 0.0;
  double aggregation_ms = 0.0;
  double total_ms = 0.0;
  /// True when this answer was served from a QueryCache without running the
  /// index. Per-stage timings and search_stats are zero in that case — the
  /// stages did not run; only total_ms reflects the (cached) serving cost.
  bool from_cache = false;
  /// Epoch of the index generation this answer was computed against (set by
  /// the serving layer; 0 when querying an InflexIndex directly). Under live
  /// maintenance an answer is reproducible only against its own generation.
  uint64_t generation = 0;
};

/// \brief Options for building an INFLEX index.
struct InflexBuildOptions {
  IndexPointOptions index_points;
  /// ℓ — length of each pre-computed seed list (paper: 50).
  size_t seed_list_length = 50;
  /// Live-edge snapshots behind each CELF++ precomputation.
  size_t oracle_snapshots = 150;
  bbtree::BbTreeOptions tree;
  uint64_t seed = 17;
  /// Run the per-index-point CELF++ computations across the pool.
  bool parallel_precompute = true;
  ThreadPool* pool = nullptr;
};

/// \brief The INFLEX index (Figure 2): h index points on the topic simplex,
/// their pre-computed CELF++ seed lists, and a Bregman ball tree over the
/// points for similarity search. Holds a pointer to the social graph it was
/// built for (the graph must outlive the index); the graph is not consulted
/// at query time — queries touch only the index, which is what makes
/// millisecond answers possible.
class InflexIndex {
 public:
  /// Builds the full index from a graph and an item catalog: index-point
  /// selection (§3.1), per-point CELF++ seed precompute, bb-tree (§3.2).
  /// This is the paper's heavy offline phase.
  static Result<InflexIndex> Build(const graph::TopicGraph& graph,
                                   const std::vector<simplex::TopicDistribution>& catalog,
                                   const InflexBuildOptions& options = {});

  /// Builds an index from externally supplied points and seed lists (used by
  /// tests and by Load()).
  static Result<InflexIndex> FromParts(const graph::TopicGraph* graph,
                                       std::vector<simplex::TopicVector> points,
                                       std::vector<rank::RankedList> seed_lists,
                                       const bbtree::BbTreeOptions& tree_options);

  /// Answers the TIM query Q(γ_q, k) (§4). Fails on dimension mismatch,
  /// k = 0, or an empty retrieval.
  Result<QueryResult> Query(const simplex::TopicDistribution& item, size_t k,
                            const QueryOptions& options = {}) const;

  size_t num_index_points() const { return seed_lists_.size(); }
  size_t seed_list_length() const { return seed_list_length_; }
  size_t num_topics() const { return tree_.dim(); }
  const bbtree::BbTree& tree() const { return tree_; }
  const rank::RankedList& seed_list(uint32_t point_id) const {
    return seed_lists_[point_id];
  }
  /// A copy of the index point (the tree stores points in a flat SoA buffer,
  /// so there is no long-lived TopicVector to reference).
  simplex::TopicVector index_point(uint32_t point_id) const {
    return tree_.point(point_id);
  }

  /// Adds one index point online (a newly catalogued item with its
  /// pre-computed seed list) without rebuilding the ball tree: the point is
  /// inserted incrementally into the tree (O(depth), conservative ball
  /// enlargement — every search stays sound and finds it immediately).
  /// Inserts degrade the tree's partition quality; watch
  /// tree().degradation() and call Compact() for a full §3.2 rebuild once
  /// it crosses your budget. Fails on dimension mismatch, an invalid list,
  /// or (when a graph is attached) out-of-range node ids.
  Status AddIndexPoint(const simplex::TopicDistribution& item,
                       rank::RankedList seed_list);

  /// Drops the given index points (and their seed lists) without rebuilding
  /// the tree: rows are physically compacted and surviving ids densely
  /// renumbered in order (see BbTree::RemovePoints). When `old_to_new` is
  /// non-null it receives the id remap — old_to_new[old_id] is the
  /// survivor's new id, or kDroppedIndexPoint for removed ids — which the
  /// serving layer threads through generation publishes so hit accounting
  /// and admitted-item registries follow the renumbering. Fails (without
  /// mutating) on out-of-range ids or when the removal would empty the
  /// index. Removals count toward tree().degradation(); Compact() restores
  /// a fresh partition.
  Status RemoveIndexPoints(std::span<const uint32_t> ids,
                           std::vector<uint32_t>* old_to_new = nullptr);

  /// Rebuilds the ball tree from scratch over all points (the §3.2 offline
  /// construction), restoring tree().degradation() to 0. Point ids are
  /// preserved (ids are positions in the point set, which rebuilding keeps).
  /// A no-op when the tree has seen neither inserts nor removals since the
  /// last build.
  Status Compact(const bbtree::BbTreeOptions& tree_options = {});

  /// Number of points added online since the last full (re)build.
  size_t overflow_size() const { return tree_.num_inserted(); }

  /// Persists points + seed lists (the tree is rebuilt on load; any
  /// online-inserted points are folded in).
  Status Save(const std::string& path) const;

  /// Loads an index saved by Save(). `graph` may be nullptr — it is only
  /// used for invariant checks against node ids.
  static Result<InflexIndex> Load(const std::string& path,
                                  const graph::TopicGraph* graph,
                                  const bbtree::BbTreeOptions& tree_options = {});

 private:
  InflexIndex() = default;

  /// Retrieval stage of Query() per strategy.
  bbtree::InflexSearchResult RunSearch(const simplex::TopicVector& q,
                                       const QueryOptions& options) const;

  const graph::TopicGraph* graph_ = nullptr;  // may be null after Load
  bbtree::BbTree tree_;
  std::vector<rank::RankedList> seed_lists_;  // aligned with tree point ids
  size_t seed_list_length_ = 0;
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_INFLEX_INDEX_H_
