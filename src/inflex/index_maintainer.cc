#include "inflex/index_maintainer.h"

#include <cstdio>
#include <utility>

#include "inflex/baselines.h"
#include "util/check.h"

namespace inflex {
namespace core {

const char* DeltaOutcomeName(DeltaOutcome outcome) {
  switch (outcome) {
    case DeltaOutcome::kAdmitted:
      return "admitted";
    case DeltaOutcome::kCovered:
      return "covered";
    case DeltaOutcome::kSuperseded:
      return "superseded";
  }
  return "unknown";
}

std::string MaintenanceStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu deltas: %llu admitted %llu covered %llu superseded "
                "%llu failed | %llu generations (epoch %llu, %zu points, "
                "%llu rebuilds) | %zu pending",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(covered),
                static_cast<unsigned long long>(superseded),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(generations_published),
                static_cast<unsigned long long>(epoch), index_points,
                static_cast<unsigned long long>(tree_rebuilds), pending);
  return buf;
}

IndexMaintainer::IndexMaintainer(std::shared_ptr<const InflexIndex> initial,
                                 const graph::TopicGraph* graph,
                                 QueryEngine* engine,
                                 const IndexMaintainerOptions& options)
    : graph_(graph), engine_(engine), options_(options) {
  INFLEX_CHECK(initial != nullptr);
  INFLEX_CHECK(graph_ != nullptr);
  INFLEX_CHECK_GT(options_.admission_threshold, 0.0);
  INFLEX_CHECK_GT(options_.oracle_snapshots, 0u);
  if (options_.pool == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(1);
    pool_ = owned_pool_.get();
  } else {
    pool_ = options_.pool;
  }
  current_ = std::move(initial);
  epoch_ = engine_ != nullptr ? engine_->index_epoch() : 0;
  stats_.epoch = epoch_;
  stats_.index_points = current_->num_index_points();
}

IndexMaintainer::~IndexMaintainer() { Drain(); }

double IndexMaintainer::MinDivergence(const InflexIndex& index,
                                      const simplex::TopicDistribution& item) {
  // Neighbor.divergence is D_KL(index point ‖ query) — exactly the §3.1
  // coverage objective evaluated at the incoming item.
  const auto nearest = index.tree().ExactKnn(item.probs(), 1);
  INFLEX_CHECK(!nearest.empty());
  return nearest.front().divergence;
}

Result<DeltaReceipt> IndexMaintainer::SubmitDelta(const CatalogDelta& delta) {
  std::shared_ptr<const InflexIndex> snapshot;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.submitted;
    snapshot = current_;
  }
  if (delta.item.num_topics() != snapshot->num_topics()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.failed;
    return Status::InvalidArgument("delta topic dimension mismatch");
  }

  DeltaReceipt receipt;
  receipt.min_divergence = MinDivergence(*snapshot, delta.item);
  if (receipt.min_divergence <= options_.admission_threshold) {
    receipt.outcome = DeltaOutcome::kCovered;
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.covered;
    return receipt;
  }

  receipt.outcome = DeltaOutcome::kAdmitted;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.admitted;
    ++pending_;
    receipt.ticket = ++next_ticket_;
  }
  // Capture by value: the delta outlives the caller's buffer, the `this`
  // lifetime is covered by ~IndexMaintainer draining the pool. The timer
  // starts here so the reported admission→publish latency includes the
  // queueing delay on the maintenance pool, not just the precompute.
  CatalogDelta copy = delta;
  const uint64_t ticket = receipt.ticket;
  Timer admitted_at;
  pool_->Submit([this, copy = std::move(copy), ticket, admitted_at]() mutable {
    ProcessAdmitted(copy, ticket, admitted_at);
  });
  return receipt;
}

void IndexMaintainer::ProcessAdmitted(const CatalogDelta& delta,
                                      uint64_t ticket, Timer admitted_at) {
  // Stage 2: the expensive CELF++ precompute, against the graph only — no
  // lock held, no generation pinned; serving proceeds untouched.
  size_t ell = options_.seed_list_length;
  std::shared_ptr<const InflexIndex> snapshot;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    snapshot = current_;
  }
  if (ell == 0) ell = snapshot->seed_list_length();
  snapshot.reset();

  OfflineImOptions oopts;
  oopts.num_snapshots = options_.oracle_snapshots;
  // Per-ticket seed: deterministic given the admission order, decorrelated
  // across deltas.
  oopts.seed = options_.seed + ticket;
  // This task may share a pool with other maintenance work; nested
  // parallelism inside CELF++ would run inline anyway (pool re-entrancy
  // contract), so ask for the serial first iteration explicitly.
  oopts.selection.parallel_first_iteration = false;
  auto seeds = OfflineTicSeeds(*graph_, delta.item, ell, oopts);

  Status publish_status = Status::OK();
  bool superseded = false;
  bool rebuilt = false;
  if (!seeds.ok()) {
    publish_status = seeds.status();
  } else {
    // Stage 3: serialized clone→insert→publish. publish_mu_ makes the
    // generation history linear; state_mu_ is only taken for the short
    // pointer/counter updates inside.
    std::lock_guard<std::mutex> publish_lock(publish_mu_);
    std::shared_ptr<const InflexIndex> base;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      base = current_;
    }
    // Re-check coverage against the LATEST generation: a concurrent
    // publication (a near-duplicate delta racing through) may have covered
    // this item since admission.
    if (MinDivergence(*base, delta.item) <= options_.admission_threshold) {
      superseded = true;
    } else {
      auto next = std::make_shared<InflexIndex>(*base);
      rank::RankedList list(seeds.ValueOrDie().seeds.begin(),
                            seeds.ValueOrDie().seeds.end());
      publish_status = next->AddIndexPoint(delta.item, std::move(list));
      if (publish_status.ok() &&
          next->tree().degradation() >= options_.rebuild_degradation) {
        publish_status = next->Compact(options_.tree);
        rebuilt = publish_status.ok();
      }
      if (publish_status.ok()) {
        std::shared_ptr<const InflexIndex> published = std::move(next);
        uint64_t epoch = 0;
        if (engine_ != nullptr) {
          epoch = engine_->PublishIndex(published);
          engine_->RecordPublishLatency(admitted_at.ElapsedMillis());
        }
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          if (engine_ == nullptr) epoch = epoch_ + 1;
          current_ = published;
          epoch_ = epoch;
          ++stats_.generations_published;
          if (rebuilt) ++stats_.tree_rebuilds;
          stats_.epoch = epoch_;
          stats_.index_points = published->num_index_points();
        }
        if (options_.on_publish) options_.on_publish(epoch, published);
      }
    }
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  if (superseded) {
    ++stats_.superseded;
  } else if (!publish_status.ok()) {
    ++stats_.failed;
  }
  INFLEX_CHECK_GT(pending_, 0u);
  --pending_;
  drained_.notify_all();
}

void IndexMaintainer::Drain() {
  INFLEX_CHECK(!pool_->OnWorkerThread());
  std::unique_lock<std::mutex> lock(state_mu_);
  drained_.wait(lock, [this] { return pending_ == 0; });
}

std::shared_ptr<const InflexIndex> IndexMaintainer::current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

uint64_t IndexMaintainer::epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return epoch_;
}

MaintenanceStats IndexMaintainer::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  MaintenanceStats out = stats_;
  out.pending = pending_;
  return out;
}

}  // namespace core
}  // namespace inflex
