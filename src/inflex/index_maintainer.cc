#include "inflex/index_maintainer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include "simplex/divergence.h"
#include "util/check.h"
#include "util/logging.h"

namespace inflex {
namespace core {

const char* DeltaOutcomeName(DeltaOutcome outcome) {
  switch (outcome) {
    case DeltaOutcome::kAdmitted:
      return "admitted";
    case DeltaOutcome::kCovered:
      return "covered";
    case DeltaOutcome::kSuperseded:
      return "superseded";
    case DeltaOutcome::kRetryLater:
      return "retry-later";
  }
  return "unknown";
}

std::string MaintenanceStats::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%llu deltas: %llu admitted %llu covered %llu superseded "
                "%llu failed %llu deferred | %llu generations (epoch %llu, "
                "%zu points, %llu rebuilds, %llu coalesced) | %llu sweeps, "
                "%llu evicted | %zu pending",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(covered),
                static_cast<unsigned long long>(superseded),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(deferred),
                static_cast<unsigned long long>(generations_published),
                static_cast<unsigned long long>(epoch), index_points,
                static_cast<unsigned long long>(tree_rebuilds),
                static_cast<unsigned long long>(batched_deltas),
                static_cast<unsigned long long>(decay_sweeps),
                static_cast<unsigned long long>(points_evicted), pending);
  return buf;
}

IndexMaintainer::IndexMaintainer(std::shared_ptr<const InflexIndex> initial,
                                 const graph::TopicGraph* graph,
                                 QueryEngine* engine,
                                 const IndexMaintainerOptions& options)
    : graph_(graph), engine_(engine), options_(options) {
  INFLEX_CHECK(initial != nullptr);
  INFLEX_CHECK(graph_ != nullptr);
  INFLEX_CHECK_GT(options_.admission_threshold, 0.0);
  INFLEX_CHECK_GT(options_.oracle_snapshots, 0u);
  options_.max_batch = std::max<size_t>(options_.max_batch, 1);
  // Zero-valued oracle seed/snapshots inherit the maintainer's own, so the
  // default configuration reproduces the historical CELF++ path exactly
  // (same snapshot seed per ticket, same snapshot count).
  if (options_.oracle.seed == 0) options_.oracle.seed = options_.seed;
  if (options_.oracle.num_snapshots == 0) {
    options_.oracle.num_snapshots = options_.oracle_snapshots;
  }
  auto oracle_result = oracle::MakeSpreadOracle(graph_, options_.oracle);
  INFLEX_CHECK(oracle_result.ok());  // misconfiguration is a programming error
  oracle_ = std::move(oracle_result).ValueOrDie();
  // Warm the backend's shared state (the sketch universe) at setup time so
  // the one-time build never lands inside the first delta's admit→publish
  // window. A no-op for the CELF++ and RIS backends.
  INFLEX_CHECK(oracle_->Prepare().ok());
  options_.min_index_points = std::max<size_t>(options_.min_index_points, 1);
  if (options_.pool == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(1);
    pool_ = owned_pool_.get();
  } else {
    pool_ = options_.pool;
  }
  current_ = std::move(initial);
  epoch_ = engine_ != nullptr ? engine_->index_epoch() : 0;
  stats_.epoch = epoch_;
  stats_.index_points = current_->num_index_points();
  born_epoch_.assign(current_->num_index_points(), epoch_);
  publisher_ = std::thread(&IndexMaintainer::PublisherLoop, this);
}

IndexMaintainer::~IndexMaintainer() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stop_ = true;
  }
  publisher_cv_.notify_all();
  if (publisher_.joinable()) publisher_.join();
}

double IndexMaintainer::MinDivergence(const InflexIndex& index,
                                      const simplex::TopicDistribution& item) {
  // Neighbor.divergence is D_KL(index point ‖ query) — exactly the §3.1
  // coverage objective evaluated at the incoming item.
  const auto nearest = index.tree().ExactKnn(item.probs(), 1);
  INFLEX_CHECK(!nearest.empty());
  return nearest.front().divergence;
}

Result<DeltaReceipt> IndexMaintainer::SubmitDelta(const CatalogDelta& delta) {
  std::shared_ptr<const InflexIndex> snapshot;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.submitted;
    snapshot = current_;
  }
  if (delta.item.num_topics() != snapshot->num_topics()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.failed;
    return Status::InvalidArgument("delta topic dimension mismatch");
  }

  DeltaReceipt receipt;
  receipt.min_divergence = MinDivergence(*snapshot, delta.item);
  if (receipt.min_divergence <= options_.admission_threshold) {
    receipt.outcome = DeltaOutcome::kCovered;
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.covered;
    return receipt;
  }

  receipt.outcome = DeltaOutcome::kAdmitted;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Back-pressure: checked under the same lock as the admission
    // bookkeeping so concurrent submitters cannot both slip past the mark.
    if (options_.pending_high_watermark > 0 &&
        pending_ >= options_.pending_high_watermark) {
      receipt.outcome = DeltaOutcome::kRetryLater;
      ++stats_.deferred;
      return receipt;
    }
    ++stats_.admitted;
    ++pending_;
    ++precompute_inflight_;
    receipt.ticket = ++next_ticket_;
  }
  // Capture by value: the delta outlives the caller's buffer, the `this`
  // lifetime is covered by ~IndexMaintainer draining the pipeline. The timer
  // starts here so the reported admission→publish latency includes the
  // queueing delay on the maintenance pool, not just the precompute.
  CatalogDelta copy = delta;
  const uint64_t ticket = receipt.ticket;
  Timer admitted_at;
  pool_->Submit([this, copy = std::move(copy), ticket, admitted_at]() mutable {
    PrecomputeAdmitted(std::move(copy), ticket, admitted_at);
  });
  return receipt;
}

void IndexMaintainer::PrecomputeAdmitted(CatalogDelta delta, uint64_t ticket,
                                         Timer admitted_at) {
  // Stage 2: the expensive seed precompute, against the graph only — no
  // lock held, no generation pinned; serving proceeds untouched.
  size_t ell = options_.seed_list_length;
  if (ell == 0) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ell = current_->seed_list_length();
  }

  // The ticket is the oracle's salt: deterministic given the admission
  // order, decorrelated across deltas (the sketch backend ignores it by
  // design — shared randomness is what makes its universe amortizable).
  Timer precompute_timer;
  auto seeds = oracle_->SelectSeeds(delta.item, ell, ticket);
  if (engine_ != nullptr) {
    engine_->RecordPrecompute(oracle_->name(),
                              precompute_timer.ElapsedMillis() * 1e6);
  }

  // Hand off to the publisher: the delta stays `pending` until its batch is
  // published (Drain covers the whole pipeline, not just the precompute).
  ReadyDelta ready;
  ready.delta = std::move(delta);
  ready.ticket = ticket;
  ready.admitted_at = admitted_at;
  if (seeds.ok()) {
    ready.seeds.assign(seeds.ValueOrDie().seeds.begin(),
                       seeds.ValueOrDie().seeds.end());
  } else {
    ready.precompute_status = seeds.status();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ready_.push_back(std::move(ready));
    INFLEX_CHECK_GT(precompute_inflight_, 0u);
    --precompute_inflight_;
    // Notify while still holding state_mu_: this thread may belong to a
    // caller-owned pool that outlives the maintainer, and the publisher
    // cannot consume this delta (and so Drain cannot return and the
    // destructor cannot reach the cv) until we release the lock — which
    // orders this broadcast strictly before the cv's destruction. A
    // notify after unlock can still be inside pthread_cond_broadcast when
    // ~IndexMaintainer tears the cv down.
    publisher_cv_.notify_all();
  }
}

void IndexMaintainer::PublisherLoop() {
  std::unique_lock<std::mutex> lock(state_mu_);
  for (;;) {
    publisher_cv_.wait(lock, [this] {
      return stop_ || !ready_.empty() || sweep_pending_;
    });
    if (ready_.empty() && !sweep_pending_) {
      if (stop_) return;
      continue;
    }
    // Coalescing window: while precomputes are still in flight more ready
    // deltas may arrive any moment — wait for them (bounded by the batch
    // cap and max_batch_delay_ms) so a burst folds into one publication. A
    // lone delta (nothing else in flight) publishes immediately.
    if (!ready_.empty() && options_.max_batch_delay_ms > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.max_batch_delay_ms));
      while (!stop_ && ready_.size() < options_.max_batch &&
             precompute_inflight_ > 0) {
        if (publisher_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    std::vector<ReadyDelta> batch;
    batch.reserve(std::min(ready_.size(), options_.max_batch));
    while (!ready_.empty() && batch.size() < options_.max_batch) {
      batch.push_back(std::move(ready_.front()));
      ready_.pop_front();
    }
    const bool do_sweep = sweep_pending_;
    lock.unlock();
    PublishBatch(std::move(batch), do_sweep);
    lock.lock();
  }
}

std::vector<uint32_t> IndexMaintainer::PickSweepVictims(
    const InflexIndex& next, uint64_t next_epoch) {
  // Hit scores live in the serving layer; without an engine (or with hit
  // accounting off) there is no cold/hot signal and the sweep is a no-op.
  if (engine_ == nullptr || engine_->hit_accounting() == nullptr) return {};
  const std::vector<double> scores = engine_->HitScores();
  const size_t n = next.num_index_points();
  const size_t floor = options_.min_index_points;
  if (n <= floor) return {};

  // Scores cover the generation the engine currently serves; points this
  // batch just appended carry no score yet and are age-protected anyway.
  const size_t scored = std::min({scores.size(), born_epoch_.size(), n});
  std::vector<std::pair<double, uint32_t>> cands;
  for (uint32_t id = 0; id < scored; ++id) {
    const uint64_t age =
        next_epoch > born_epoch_[id] ? next_epoch - born_epoch_[id] : 0;
    if (scores[id] < options_.eviction_score_threshold &&
        age >= options_.min_point_age_generations) {
      cands.emplace_back(scores[id], id);
    }
  }
  if (cands.empty()) return {};
  // Coldest first (id breaks ties deterministically); the size floor trims
  // the warmest candidates, not the coldest.
  std::sort(cands.begin(), cands.end());
  const size_t max_evict = n - floor;
  if (cands.size() > max_evict) cands.resize(max_evict);

  std::vector<uint8_t> victim(n, 0);
  for (const auto& [score, id] : cands) victim[id] = 1;

  if (!options_.retire_admitted_items) {
    // Never evict the last point covering a registered admitted item: when
    // an item's own cover is a victim, make sure some survivor still covers
    // it within the admission threshold, else un-evict the item's best
    // cover (usually its own point, at divergence ≈ 0). Sequential
    // processing means an un-evicted point immediately protects later items
    // too.
    for (const AdmittedItem& entry : admitted_items_) {
      if (entry.point_id >= n || victim[entry.point_id] == 0) continue;
      double best_survivor = std::numeric_limits<double>::infinity();
      double best_victim_div = std::numeric_limits<double>::infinity();
      uint32_t best_victim = 0;
      for (uint32_t id = 0; id < n; ++id) {
        const double d = simplex::KlDivergence(next.index_point(id),
                                               entry.item.probs());
        if (victim[id] != 0) {
          if (d < best_victim_div) {
            best_victim_div = d;
            best_victim = id;
          }
        } else if (d < best_survivor) {
          best_survivor = d;
        }
      }
      if (best_survivor > options_.admission_threshold) {
        victim[best_victim] = 0;
      }
    }
  }

  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < n; ++id) {
    if (victim[id] != 0) out.push_back(id);
  }
  return out;
}

void IndexMaintainer::PublishBatch(std::vector<ReadyDelta> batch,
                                   bool do_sweep) {
  // Admission-ticket order makes batched publication deterministic given
  // the admission sequence, regardless of precompute completion order.
  std::sort(batch.begin(), batch.end(),
            [](const ReadyDelta& a, const ReadyDelta& b) {
              return a.ticket < b.ticket;
            });

  std::shared_ptr<const InflexIndex> base;
  uint64_t next_epoch_guess = 0;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    base = current_;
    next_epoch_guess = epoch_ + 1;
  }

  enum class Fate { kApplied, kSuperseded, kFailed };
  std::vector<Fate> fates(batch.size(), Fate::kFailed);
  std::shared_ptr<InflexIndex> next;  // ONE clone for the whole batch
  size_t applied = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    ReadyDelta& rd = batch[i];
    if (!rd.precompute_status.ok()) continue;  // stays kFailed
    // Supersede re-check against the EVOLVING clone: an earlier delta in
    // this very batch (or a previous publication) may have covered the item
    // since admission.
    const InflexIndex& probe = next != nullptr ? *next : *base;
    if (MinDivergence(probe, rd.delta.item) <= options_.admission_threshold) {
      fates[i] = Fate::kSuperseded;
      continue;
    }
    if (next == nullptr) next = std::make_shared<InflexIndex>(*base);
    const Status st = next->AddIndexPoint(rd.delta.item, std::move(rd.seeds));
    if (!st.ok()) {
      INFLEX_LOG(Warning) << "delta " << rd.delta.id
                          << " failed to apply: " << st.ToString();
      continue;
    }
    fates[i] = Fate::kApplied;
    ++applied;
    born_epoch_.push_back(next_epoch_guess);
    admitted_items_.push_back(AdmittedItem{
        rd.delta.item, static_cast<uint32_t>(next->num_index_points() - 1)});
  }

  // Fold any pending decay sweep into the same publication.
  std::vector<uint32_t> victims;
  std::vector<uint32_t> old_to_new;
  if (do_sweep) {
    victims = PickSweepVictims(next != nullptr ? *next : *base,
                               next_epoch_guess);
    if (!victims.empty()) {
      if (next == nullptr) next = std::make_shared<InflexIndex>(*base);
      const Status st = next->RemoveIndexPoints(victims, &old_to_new);
      if (!st.ok()) {
        INFLEX_LOG(Warning) << "decay sweep failed to remove points: "
                            << st.ToString();
        victims.clear();
        old_to_new.clear();
      } else {
        // Follow the dense renumbering in the publisher-thread registries.
        std::vector<uint64_t> born;
        born.reserve(born_epoch_.size() - victims.size());
        for (uint32_t id = 0; id < born_epoch_.size(); ++id) {
          if (old_to_new[id] != kDroppedIndexPoint) {
            born.push_back(born_epoch_[id]);
          }
        }
        born_epoch_ = std::move(born);
        std::vector<AdmittedItem> kept;
        kept.reserve(admitted_items_.size());
        for (AdmittedItem& entry : admitted_items_) {
          const uint32_t new_id = old_to_new[entry.point_id];
          if (new_id != kDroppedIndexPoint) {
            entry.point_id = new_id;
            kept.push_back(std::move(entry));
          } else if (!options_.retire_admitted_items) {
            // PickSweepVictims guaranteed a surviving cover exists;
            // re-point the registry entry at the nearest one.
            const auto nn = next->tree().ExactKnn(entry.item.probs(), 1);
            entry.point_id = nn.front().point_id;
            kept.push_back(std::move(entry));
          }
          // retire_admitted_items: the entry dies with its point — the item
          // is retired and would be re-admitted on resubmission.
        }
        admitted_items_ = std::move(kept);
      }
    }
  }

  bool rebuilt = false;
  bool published = false;
  uint64_t epoch = 0;
  if (next != nullptr) {
    // One Compact per batch, not per delta: the gate sees the combined
    // degradation of every insert and removal above.
    if (next->tree().degradation() >= options_.rebuild_degradation) {
      const Status st = next->Compact(options_.tree);
      if (st.ok()) {
        rebuilt = true;
      } else {
        // The incrementally maintained tree is still sound — publish it.
        INFLEX_LOG(Warning) << "compact failed: " << st.ToString();
      }
    }
    std::shared_ptr<const InflexIndex> frozen = next;
    if (engine_ != nullptr) {
      epoch = engine_->PublishIndex(frozen, old_to_new);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (fates[i] == Fate::kApplied) {
          engine_->RecordPublishLatency(batch[i].admitted_at.ElapsedMillis());
        }
      }
    }
    published = true;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (engine_ == nullptr) epoch = epoch_ + 1;
      current_ = frozen;
      epoch_ = epoch;
      ++stats_.generations_published;
      if (rebuilt) ++stats_.tree_rebuilds;
      stats_.epoch = epoch_;
      stats_.index_points = frozen->num_index_points();
      stats_.points_evicted += victims.size();
      if (applied >= 2) stats_.batched_deltas += applied;
    }
    if (options_.on_publish) options_.on_publish(epoch, frozen);
  }

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const Fate f : fates) {
      if (f == Fate::kSuperseded) {
        ++stats_.superseded;
      } else if (f == Fate::kFailed) {
        ++stats_.failed;
      }
    }
    if (do_sweep) {
      ++stats_.decay_sweeps;
      sweep_pending_ = false;
    }
    INFLEX_CHECK_GE(pending_, batch.size());
    pending_ -= batch.size();
    if (published && options_.auto_sweep_every > 0 &&
        stats_.generations_published % options_.auto_sweep_every == 0) {
      sweep_pending_ = true;  // the publisher loop picks it up next round
    }
  }
  drained_.notify_all();
}

void IndexMaintainer::RequestDecaySweep() {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    sweep_pending_ = true;
  }
  publisher_cv_.notify_all();
}

void IndexMaintainer::Drain() {
  INFLEX_CHECK(!pool_->OnWorkerThread());
  std::unique_lock<std::mutex> lock(state_mu_);
  drained_.wait(lock, [this] { return pending_ == 0 && !sweep_pending_; });
}

std::shared_ptr<const InflexIndex> IndexMaintainer::current() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_;
}

uint64_t IndexMaintainer::epoch() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return epoch_;
}

MaintenanceStats IndexMaintainer::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  MaintenanceStats out = stats_;
  out.pending = pending_;
  return out;
}

}  // namespace core
}  // namespace inflex
