#ifndef INFLEX_INFLEX_INDEX_MAINTAINER_H_
#define INFLEX_INFLEX_INDEX_MAINTAINER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "oracle/spread_oracle.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace core {

/// \brief One catalog change as it reaches the maintenance plane: a new (or
/// re-described) item's topic mixture, plus an operator-facing identifier.
struct CatalogDelta {
  /// Free-form item identifier, used only for logs and receipts.
  std::string id;
  simplex::TopicDistribution item;
};

/// \brief What happened to a submitted delta.
enum class DeltaOutcome {
  /// The delta passed the KL-coverage test: a background seed precompute
  /// (through the configured spread oracle) was scheduled and a new index
  /// generation will be published.
  kAdmitted,
  /// An existing index point already covers the item (its divergence is
  /// within the admission threshold, so by the Fig. 4 KL↔Kendall coupling
  /// the stored seed list answers it accurately). No work scheduled.
  kCovered,
  /// Admitted at submission, but by the time its seeds were ready another
  /// publication had already covered the item; the point was not added.
  /// (Only ever reported through MaintenanceStats — SubmitDelta itself has
  /// returned kAdmitted long before.)
  kSuperseded,
  /// Back-pressure: the delta would have been admitted, but the maintenance
  /// pipeline already holds pending_high_watermark unpublished deltas.
  /// Nothing was scheduled — resubmit once the publisher catches up. The
  /// serving front end maps this to kOverloaded on the wire.
  kRetryLater,
};

const char* DeltaOutcomeName(DeltaOutcome outcome);

/// \brief Receipt returned synchronously by SubmitDelta.
struct DeltaReceipt {
  DeltaOutcome outcome = DeltaOutcome::kCovered;
  /// min_i D_KL(γ_i ‖ γ_new) against the generation current at submission —
  /// the §3.1 coverage objective evaluated for the incoming item.
  double min_divergence = 0.0;
  /// Monotone ticket of an admitted delta (0 when not admitted). Tickets
  /// order admissions, not publications.
  uint64_t ticket = 0;
};

/// \brief Counters describing the maintenance plane (all cumulative).
struct MaintenanceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t covered = 0;
  uint64_t superseded = 0;
  uint64_t failed = 0;
  /// Deltas bounced with kRetryLater by the pending high-water mark.
  uint64_t deferred = 0;
  uint64_t generations_published = 0;
  uint64_t tree_rebuilds = 0;
  /// Decay sweeps executed (including sweeps that evicted nothing).
  uint64_t decay_sweeps = 0;
  /// Index points dropped by decay sweeps.
  uint64_t points_evicted = 0;
  /// Admitted deltas whose publication was coalesced with at least one
  /// other delta (i.e. published in a batch of ≥ 2). A 100-delta burst that
  /// lands in 4 generations reports ~100 here but only 4 publications.
  uint64_t batched_deltas = 0;
  /// Epoch of the newest published generation.
  uint64_t epoch = 0;
  /// Index points in the newest generation.
  size_t index_points = 0;
  /// Admitted deltas not yet published/superseded/failed (in precompute or
  /// waiting in the publisher's ready queue).
  size_t pending = 0;
  /// One-line operator rendering.
  std::string ToString() const;
};

/// \brief Options for an IndexMaintainer.
struct IndexMaintainerOptions {
  /// KL-coverage admission threshold: a delta is admitted as a new index
  /// point when min_i D_KL(γ_i ‖ γ_new) exceeds this. Mirrors the §3.1
  /// objective (cover the catalog's density with index points); Figure 4's
  /// KL↔Kendall correlation makes small divergences safe to serve from the
  /// nearest existing point.
  double admission_threshold = 0.05;
  /// ℓ of the precomputed seed list for admitted points (0 = the current
  /// index's seed_list_length()).
  size_t seed_list_length = 0;
  /// Live-edge snapshots behind each CELF++ precompute (when
  /// `oracle.backend` selects it; equals `oracle.num_snapshots` when that
  /// is left 0).
  size_t oracle_snapshots = 150;
  uint64_t seed = 101;
  /// Which spread oracle runs the stage-2 seed precompute, and its tuning.
  /// Zero-valued `oracle.seed` / `oracle.num_snapshots` inherit `seed` /
  /// `oracle_snapshots` above. The maintainer defaults to the RIS backend:
  /// orders-of-magnitude cheaper admission-time precompute at gate-verified
  /// relevance (the golden-corpus quality gate, DESIGN.md §15, scores every
  /// backend against exact-CELF++ goldens on every change; RIS cleared it
  /// before becoming the default). Set `oracle.backend` to kCelfPp to
  /// reproduce the historical hard-coded snapshot-CELF++ path bit-for-bit,
  /// or kSketch for the shared-universe estimator (DESIGN.md §14).
  oracle::SpreadOracleOptions oracle{.backend = oracle::OracleBackend::kRis};
  /// Publish-time tree-quality gate: when the batch's inserts/removals push
  /// the clone's tree degradation() to this, the new generation is produced
  /// by a full §3.2 rebuild instead (Compact()) — once per batch, not per
  /// delta.
  double rebuild_degradation = 0.10;
  /// Options for those full rebuilds.
  bbtree::BbTreeOptions tree;

  /// --- Delta coalescing (the publisher thread's batching window) ---
  /// Upper bound on admitted deltas folded into one clone+insert+publish.
  size_t max_batch = 16;
  /// How long the publisher waits for further precomputes to finish before
  /// publishing what it has. The window only opens while precomputes are
  /// actually in flight: a lone delta (nothing else pending) publishes
  /// immediately, a burst coalesces. 0 disables coalescing entirely.
  double max_batch_delay_ms = 50.0;

  /// --- Eviction / decay sweeps ---
  /// A sweep (RequestDecaySweep or auto_sweep_every) evicts points whose
  /// decayed hit score (QueryEngine::HitScores) is below this. Requires the
  /// engine to run with enable_hit_accounting; sweeps are no-ops otherwise.
  double eviction_score_threshold = 0.5;
  /// Grace period: a point is never evicted until at least this many
  /// generations have been published since it was added (fresh points have
  /// had no time to earn hits).
  size_t min_point_age_generations = 2;
  /// Hard floor on index size; sweeps never shrink the index below this.
  size_t min_index_points = 16;
  /// true (default): a cold admitted point is evicted and its item retired
  /// from the admitted-item registry — resubmitting the item later re-admits
  /// it. false: a point that is the last one covering a registered admitted
  /// item (no survivor within admission_threshold) is protected from
  /// eviction no matter how cold.
  bool retire_admitted_items = true;
  /// When > 0, a decay sweep is requested automatically after every N
  /// published generations. 0 = sweeps only via RequestDecaySweep().
  size_t auto_sweep_every = 0;

  /// --- Back-pressure ---
  /// When > 0, SubmitDelta answers kRetryLater (admitting nothing) while
  /// `pending` — admitted deltas not yet published/superseded/failed — is at
  /// or above this mark. Bounds the precompute backlog under delta storms:
  /// the CELF++ stage is minutes-per-delta while admission is microseconds,
  /// so without a ceiling the queue grows unboundedly. 0 = unbounded
  /// (the pre-back-pressure behavior).
  size_t pending_high_watermark = 0;

  /// Dedicated background pool for the seed precompute; the serving path
  /// never blocks on it. nullptr = the maintainer creates a private
  /// single-thread pool.
  ThreadPool* pool = nullptr;
  /// Invoked after every generation publication, from the publisher thread
  /// (so invocations are ordered by epoch). Must not call SubmitDelta or
  /// Drain of this maintainer synchronously from the callback; reading
  /// stats()/current() is fine.
  std::function<void(uint64_t epoch, std::shared_ptr<const InflexIndex>)>
      on_publish;
};

/// \brief The live index maintenance plane: turns a stream of catalog deltas
/// into a sequence of immutable InflexIndex *generations* published under
/// serving load, without ever blocking the query path.
///
/// Pipeline per delta (the paper's offline §3 stages made incremental):
///  1. **Admission** (synchronous, microseconds): a 1-NN probe of the
///     current generation's ball tree evaluates the §3.1 coverage objective
///     min_i D_KL(γ_i ‖ γ_new). Deltas inside the threshold are already
///     covered — the nearest point's precomputed list serves them — and are
///     dropped.
///  2. **Seed precompute** (background, the expensive part): the configured
///     SpreadOracle on the item-specific IC instance (Eq. 1), run on the
///     dedicated maintenance pool. The default CELF++ backend is exactly
///     the per-point offline computation of InflexIndex::Build; the RIS and
///     sketch backends trade that golden path for orders-of-magnitude lower
///     admit→publish latency (DESIGN.md §14). Finished precomputes are
///     handed to the publisher as *ready deltas*.
///  3. **Coalesced publication** (dedicated publisher thread): ready deltas
///     are drained in admission-ticket order into ONE clone of the latest
///     generation — re-checking coverage against the *evolving* clone, so a
///     near-duplicate admitted twice still publishes once (kSuperseded) —
///     bounded by max_batch / max_batch_delay_ms. Pending decay-sweep
///     evictions fold into the same clone (RemoveIndexPoints), the tree is
///     compacted at most once per batch when degradation crosses the gate,
///     and the clone is published as the next immutable generation via
///     QueryEngine::PublishIndex (atomic shared_ptr swap + cache-epoch bump,
///     with the eviction id-remap threaded into the hit-score fold). A burst
///     of N admitted deltas costs O(1) generations instead of N; in-flight
///     queries keep the generation they pinned; nobody waits.
///
/// Eviction safety: a sweep only considers points whose decayed hit score is
/// below eviction_score_threshold AND that are at least
/// min_point_age_generations old; the index never shrinks below
/// min_index_points; and with retire_admitted_items=false the last point
/// covering a registered admitted item is protected (see options).
///
/// Thread-safety: SubmitDelta/RequestDecaySweep/Drain/current/epoch/stats
/// may be called concurrently from any threads, concurrently with serving.
class IndexMaintainer {
 public:
  /// `initial` is generation 0 (must be the same index the engine serves).
  /// `graph` backs the CELF++ precompute and must outlive the maintainer.
  /// `engine` receives the publications; may be nullptr (the maintainer
  /// then only tracks generations itself — useful for tests and tools —
  /// but decay sweeps become no-ops: hit scores live in the engine).
  IndexMaintainer(std::shared_ptr<const InflexIndex> initial,
                  const graph::TopicGraph* graph, QueryEngine* engine,
                  const IndexMaintainerOptions& options = {});

  /// Drains pending work before destruction.
  ~IndexMaintainer();

  IndexMaintainer(const IndexMaintainer&) = delete;
  IndexMaintainer& operator=(const IndexMaintainer&) = delete;

  /// Runs the admission test and, for admitted deltas, schedules the
  /// background precompute+publication. Returns immediately in either case.
  /// Fails on a dimension mismatch with the index.
  Result<DeltaReceipt> SubmitDelta(const CatalogDelta& delta);

  /// Asks the publisher to fold a decay sweep into its next publication
  /// (standalone if no deltas are pending). Returns immediately; Drain()
  /// waits for the sweep too. Requests collapse: several requests before
  /// the sweep runs execute once.
  void RequestDecaySweep();

  /// Blocks until every admitted delta has been published, superseded, or
  /// failed, and any requested decay sweep has run. Must not be called from
  /// the maintenance pool or the on_publish callback.
  void Drain();

  /// Pins and returns the newest published generation.
  std::shared_ptr<const InflexIndex> current() const;

  /// Epoch of the newest published generation.
  uint64_t epoch() const;

  MaintenanceStats stats() const;

 private:
  /// A delta whose precompute finished, waiting for the publisher.
  struct ReadyDelta {
    CatalogDelta delta;
    uint64_t ticket = 0;
    rank::RankedList seeds;
    Status precompute_status;
    /// Started at admission; elapsed at publication = admit→publish latency.
    Timer admitted_at;
  };

  /// An admitted item the maintainer still vouches coverage for (used by
  /// the retire_admitted_items=false protection rule). Publisher-thread
  /// state: only the publisher reads or mutates the registry after
  /// construction.
  struct AdmittedItem {
    simplex::TopicDistribution item;
    uint32_t point_id = 0;
  };

  /// Background stage 2: seed precompute through the configured spread
  /// oracle, then hand off to the publisher.
  void PrecomputeAdmitted(CatalogDelta delta, uint64_t ticket,
                          Timer admitted_at);

  /// The publisher thread: batches ready deltas + pending sweeps into
  /// coalesced publications until shutdown.
  void PublisherLoop();

  /// Stage 3 for one batch (runs on the publisher thread, no lock held).
  void PublishBatch(std::vector<ReadyDelta> batch, bool do_sweep);

  /// Picks sweep victims for the clone `next` (already carrying this
  /// batch's inserts). Returns ids to remove, respecting score threshold,
  /// min age, min size, and admitted-item coverage.
  std::vector<uint32_t> PickSweepVictims(const InflexIndex& next,
                                         uint64_t next_epoch);

  /// min_i D_KL(γ_i ‖ γ_item) via a 1-NN tree probe of `index`.
  static double MinDivergence(const InflexIndex& index,
                              const simplex::TopicDistribution& item);

  const graph::TopicGraph* graph_;
  QueryEngine* engine_;  // may be null
  IndexMaintainerOptions options_;
  /// The stage-2 seed-precompute backend. Thread-safe: pool workers call
  /// SelectSeeds concurrently; the sketch backend's shared universe is
  /// built lazily on the first precompute (on the maintenance pool, inside
  /// the pending-tracked stage, so Drain() covers it) and published
  /// RCU-style.
  std::unique_ptr<oracle::SpreadOracle> oracle_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // options_.pool or owned_pool_.get()

  mutable std::mutex state_mu_;
  std::condition_variable publisher_cv_;     // wakes the publisher
  std::condition_variable drained_;          // pending_==0 && !sweep_pending_
  std::shared_ptr<const InflexIndex> current_;  // guarded by state_mu_
  uint64_t epoch_ = 0;                       // guarded by state_mu_
  uint64_t next_ticket_ = 0;                 // guarded by state_mu_
  size_t pending_ = 0;                       // guarded by state_mu_
  size_t precompute_inflight_ = 0;           // guarded by state_mu_
  std::deque<ReadyDelta> ready_;             // guarded by state_mu_
  bool sweep_pending_ = false;               // guarded by state_mu_
  bool stop_ = false;                        // guarded by state_mu_
  MaintenanceStats stats_;                   // guarded by state_mu_

  /// Publisher-thread-only state (no lock): birth epoch per current point
  /// id (age gate) and the admitted-item registry (coverage protection).
  /// Both follow the eviction id-remap at each sweep publish.
  std::vector<uint64_t> born_epoch_;
  std::vector<AdmittedItem> admitted_items_;

  /// Started last in the constructor, joined first in the destructor.
  std::thread publisher_;
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_INDEX_MAINTAINER_H_
