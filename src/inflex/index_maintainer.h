#ifndef INFLEX_INFLEX_INDEX_MAINTAINER_H_
#define INFLEX_INFLEX_INDEX_MAINTAINER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "inflex/inflex_index.h"
#include "inflex/query_engine.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace inflex {
namespace core {

/// \brief One catalog change as it reaches the maintenance plane: a new (or
/// re-described) item's topic mixture, plus an operator-facing identifier.
struct CatalogDelta {
  /// Free-form item identifier, used only for logs and receipts.
  std::string id;
  simplex::TopicDistribution item;
};

/// \brief What happened to a submitted delta.
enum class DeltaOutcome {
  /// The delta passed the KL-coverage test: a background CELF++ seed
  /// precompute was scheduled and a new index generation will be published.
  kAdmitted,
  /// An existing index point already covers the item (its divergence is
  /// within the admission threshold, so by the Fig. 4 KL↔Kendall coupling
  /// the stored seed list answers it accurately). No work scheduled.
  kCovered,
  /// Admitted at submission, but by the time its seeds were ready another
  /// publication had already covered the item; the generation was not
  /// produced. (Only ever reported through MaintenanceStats — SubmitDelta
  /// itself has returned kAdmitted long before.)
  kSuperseded,
};

const char* DeltaOutcomeName(DeltaOutcome outcome);

/// \brief Receipt returned synchronously by SubmitDelta.
struct DeltaReceipt {
  DeltaOutcome outcome = DeltaOutcome::kCovered;
  /// min_i D_KL(γ_i ‖ γ_new) against the generation current at submission —
  /// the §3.1 coverage objective evaluated for the incoming item.
  double min_divergence = 0.0;
  /// Monotone ticket of an admitted delta (0 when not admitted). Tickets
  /// order admissions, not publications.
  uint64_t ticket = 0;
};

/// \brief Counters describing the maintenance plane (all cumulative).
struct MaintenanceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t covered = 0;
  uint64_t superseded = 0;
  uint64_t failed = 0;
  uint64_t generations_published = 0;
  uint64_t tree_rebuilds = 0;
  /// Epoch of the newest published generation.
  uint64_t epoch = 0;
  /// Index points in the newest generation.
  size_t index_points = 0;
  /// Admitted deltas whose background precompute has not finished yet.
  size_t pending = 0;
  /// One-line operator rendering.
  std::string ToString() const;
};

/// \brief Options for an IndexMaintainer.
struct IndexMaintainerOptions {
  /// KL-coverage admission threshold: a delta is admitted as a new index
  /// point when min_i D_KL(γ_i ‖ γ_new) exceeds this. Mirrors the §3.1
  /// objective (cover the catalog's density with index points); Figure 4's
  /// KL↔Kendall correlation makes small divergences safe to serve from the
  /// nearest existing point.
  double admission_threshold = 0.05;
  /// ℓ of the precomputed seed list for admitted points (0 = the current
  /// index's seed_list_length()).
  size_t seed_list_length = 0;
  /// Live-edge snapshots behind each background CELF++ run.
  size_t oracle_snapshots = 150;
  uint64_t seed = 101;
  /// Publish-time tree-quality gate: when the incrementally maintained ball
  /// tree's degradation() reaches this after an insert, the new generation
  /// is produced by a full §3.2 rebuild instead (Compact()).
  double rebuild_degradation = 0.10;
  /// Options for those full rebuilds.
  bbtree::BbTreeOptions tree;
  /// Dedicated background pool for the CELF++ precompute; the serving path
  /// never blocks on it. nullptr = the maintainer creates a private
  /// single-thread pool.
  ThreadPool* pool = nullptr;
  /// Invoked after every generation publication (under the internal publish
  /// lock, so invocations are ordered by epoch). Must not call SubmitDelta
  /// of this maintainer synchronously from the callback on pain of
  /// re-entrancy surprises; reading stats()/current() is fine.
  std::function<void(uint64_t epoch, std::shared_ptr<const InflexIndex>)>
      on_publish;
};

/// \brief The live index maintenance plane: turns a stream of catalog deltas
/// into a sequence of immutable InflexIndex *generations* published under
/// serving load, without ever blocking the query path.
///
/// Pipeline per delta (the paper's offline §3 stages made incremental):
///  1. **Admission** (synchronous, microseconds): a 1-NN probe of the
///     current generation's ball tree evaluates the §3.1 coverage objective
///     min_i D_KL(γ_i ‖ γ_new). Deltas inside the threshold are already
///     covered — the nearest point's precomputed list serves them — and are
///     dropped.
///  2. **Seed precompute** (background, the expensive part): CELF++ over a
///     live-edge snapshot oracle on the item-specific IC instance (Eq. 1),
///     exactly the per-point offline computation of InflexIndex::Build, run
///     on the dedicated maintenance pool.
///  3. **Publication** (serialized, milliseconds): re-check coverage against
///     the *latest* generation (a concurrent publication may have covered
///     the item meanwhile → superseded), clone it, insert the new point
///     incrementally into the clone's ball tree — or trigger a full §3.2
///     rebuild when tree degradation crosses the gate — and publish the
///     clone as the next immutable generation via QueryEngine::PublishIndex
///     (atomic shared_ptr swap + cache-epoch bump). In-flight queries keep
///     the generation they pinned; nobody waits.
///
/// Thread-safety: SubmitDelta/Drain/current/epoch/stats may be called
/// concurrently from any threads, concurrently with serving. Two
/// near-duplicate deltas racing through admission may both be admitted; the
/// publish-time re-check resolves the race (one becomes kSuperseded).
class IndexMaintainer {
 public:
  /// `initial` is generation 0 (must be the same index the engine serves).
  /// `graph` backs the CELF++ precompute and must outlive the maintainer.
  /// `engine` receives the publications; may be nullptr (the maintainer
  /// then only tracks generations itself — useful for tests and tools).
  IndexMaintainer(std::shared_ptr<const InflexIndex> initial,
                  const graph::TopicGraph* graph, QueryEngine* engine,
                  const IndexMaintainerOptions& options = {});

  /// Drains pending work before destruction.
  ~IndexMaintainer();

  IndexMaintainer(const IndexMaintainer&) = delete;
  IndexMaintainer& operator=(const IndexMaintainer&) = delete;

  /// Runs the admission test and, for admitted deltas, schedules the
  /// background precompute+publication. Returns immediately in either case.
  /// Fails on a dimension mismatch with the index.
  Result<DeltaReceipt> SubmitDelta(const CatalogDelta& delta);

  /// Blocks until every admitted delta has been published, superseded, or
  /// failed. Must not be called from the maintenance pool itself.
  void Drain();

  /// Pins and returns the newest published generation.
  std::shared_ptr<const InflexIndex> current() const;

  /// Epoch of the newest published generation.
  uint64_t epoch() const;

  MaintenanceStats stats() const;

 private:
  /// Background stage: seed precompute + serialized publication.
  /// `admitted_at` started ticking at admission; its elapsed time at
  /// publication is the delta's admission→publish latency, reported to the
  /// engine's ServingStats.
  void ProcessAdmitted(const CatalogDelta& delta, uint64_t ticket,
                       Timer admitted_at);

  /// min_i D_KL(γ_i ‖ γ_item) via a 1-NN tree probe of `index`.
  static double MinDivergence(const InflexIndex& index,
                              const simplex::TopicDistribution& item);

  const graph::TopicGraph* graph_;
  QueryEngine* engine_;  // may be null
  IndexMaintainerOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;  // options_.pool or owned_pool_.get()

  /// Serializes the clone→insert→publish critical section so generations
  /// form a linear history.
  std::mutex publish_mu_;

  mutable std::mutex state_mu_;
  std::condition_variable drained_;          // pending_ == 0
  std::shared_ptr<const InflexIndex> current_;  // guarded by state_mu_
  uint64_t epoch_ = 0;                       // guarded by state_mu_
  uint64_t next_ticket_ = 0;                 // guarded by state_mu_
  size_t pending_ = 0;                       // guarded by state_mu_
  MaintenanceStats stats_;                   // guarded by state_mu_
};

}  // namespace core
}  // namespace inflex

#endif  // INFLEX_INFLEX_INDEX_MAINTAINER_H_
