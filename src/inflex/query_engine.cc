#include "inflex/query_engine.h"

#include <algorithm>
#include <cstdio>

#include "stats/descriptive.h"
#include "util/timer.h"

namespace inflex {
namespace core {

double ServingStats::hit_rate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

double ServingStats::epoch_hit_rate() const {
  const uint64_t total = epoch_cache_hits + epoch_cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(epoch_cache_hits) /
                          static_cast<double>(total);
}

std::string ServingStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%zu req in %.2f ms | %.0f QPS | hit rate %.1f%% | "
                "p50 %.3f ms p95 %.3f ms p99 %.3f ms max %.3f ms | %zu failed"
                " | %llu swaps, epoch hit rate %.1f%%, "
                "admit->publish mean %.1f ms max %.1f ms | "
                "queue %zu (peak %zu), %llu shed, %llu expired",
                num_requests, wall_ms, qps, 100.0 * hit_rate(), p50_ms, p95_ms,
                p99_ms, max_ms, num_failed,
                static_cast<unsigned long long>(generation_swaps),
                100.0 * epoch_hit_rate(), admit_to_publish_mean_ms,
                admit_to_publish_max_ms, admission_queue_depth,
                admission_queue_peak,
                static_cast<unsigned long long>(shed_count),
                static_cast<unsigned long long>(deadline_expired_count));
  std::string out = buf;
  for (const OraclePrecompute& row : precompute) {
    std::snprintf(buf, sizeof(buf),
                  " | precompute[%s] %llu x mean %.2f ms max %.2f ms",
                  row.backend.c_str(),
                  static_cast<unsigned long long>(row.count),
                  row.mean_ns() / 1e6, row.max_ns / 1e6);
    out += buf;
  }
  return out;
}

QueryEngine::QueryEngine(std::shared_ptr<const InflexIndex> index,
                         const QueryEngineOptions& options)
    : options_(options), cache_(options.cache) {
  INFLEX_CHECK(index != nullptr);
  if (options_.enable_hit_accounting) {
    PointHitAccounting::Options hopts;
    hopts.decay = options_.hit_decay;
    hopts.num_stripes = options_.hit_stripes;
    hit_accounting_ = std::make_unique<PointHitAccounting>(
        index->num_index_points(), hopts);
  }
  generation_.store(
      std::make_shared<const Generation>(Generation{std::move(index), 0}),
      std::memory_order_release);
  stats_stripes_.reserve(kStatsStripes);
  for (size_t i = 0; i < kStatsStripes; ++i) {
    auto stripe = std::make_unique<StatsStripe>();
    stripe->reservoir.reserve(kStripeReservoirCapacity);
    stripe->rng.Seed(0x1a7e9c5u + i);
    stats_stripes_.push_back(std::move(stripe));
  }
}

QueryEngine::QueryEngine(const InflexIndex* index,
                         const QueryEngineOptions& options)
    : QueryEngine(std::shared_ptr<const InflexIndex>(
                      std::shared_ptr<const InflexIndex>(), index),
                  options) {}

Result<QueryResult> QueryEngine::Query(const QueryRequest& request) {
  // Pin the generation: the shared_ptr copy keeps this index (and the
  // epoch the cache key is derived from) alive and consistent for the whole
  // request, regardless of concurrent PublishIndex calls.
  const std::shared_ptr<const Generation> gen = PinGeneration();
  Result<QueryResult> result =
      options_.enable_cache
          ? cache_.Query(*gen->index, request.item, request.k, request.options,
                         gen->epoch)
          : gen->index->Query(request.item, request.k, request.options);
  if (result.ok()) {
    result.ValueOrDie().generation = gen->epoch;
    // Credit the index points that backed this answer (cache hits included:
    // a point behind a hot cached answer is still earning its keep).
    if (hit_accounting_ != nullptr) {
      hit_accounting_->Record(gen->epoch, result.ValueOrDie().neighbors_used);
    }
  }
  return result;
}

std::vector<Result<QueryResult>> QueryEngine::QueryBatch(
    std::span<const QueryRequest> requests, ServingStats* stats) {
  const size_t n = requests.size();
  std::vector<Result<QueryResult>> results(n, Status::Internal("not served"));
  std::vector<double> latencies_ms(n, 0.0);
  const uint64_t hits_before = cache_.hits();
  const uint64_t misses_before = cache_.misses();

  BeginBatchSpan();
  Timer wall;
  ParallelFor(
      0, n,
      [&](size_t i) {
        Timer t;
        results[i] = Query(requests[i]);
        latencies_ms[i] = t.ElapsedMillis();
      },
      options_.pool);
  const double batch_wall_ms = wall.ElapsedMillis();
  EndBatchSpan();

  ServingStats batch;
  batch.num_requests = n;
  for (const auto& r : results) {
    if (r.ok()) {
      ++batch.num_ok;
    } else {
      ++batch.num_failed;
    }
  }
  batch.cache_hits = cache_.hits() - hits_before;
  batch.cache_misses = cache_.misses() - misses_before;
  batch.wall_ms = batch_wall_ms;
  batch.qps = batch.wall_ms > 0.0
                  ? static_cast<double>(n) / (batch.wall_ms / 1e3)
                  : 0.0;
  double latency_sum_ms = 0.0;
  if (n > 0) {
    batch.mean_ms = stats::Mean(latencies_ms);
    batch.p50_ms = stats::Percentile(latencies_ms, 0.50);
    batch.p95_ms = stats::Percentile(latencies_ms, 0.95);
    batch.p99_ms = stats::Percentile(latencies_ms, 0.99);
    batch.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
    batch.latency_samples = n;
    latency_sum_ms = batch.mean_ms * static_cast<double>(n);
  }
  if (stats != nullptr) *stats = batch;

  // Fold the whole batch into ONE stripe (dealt round-robin): concurrent
  // batchers hit distinct stripe mutexes almost always, so the fold never
  // serializes the serving plane the way a single engine-wide stats lock
  // did. The merged view is recomputed at read (cumulative_stats).
  StatsStripe& stripe = *stats_stripes_[stripe_rr_.fetch_add(
                                            1, std::memory_order_relaxed) %
                                        kStatsStripes];
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.num_requests += batch.num_requests;
    stripe.num_ok += batch.num_ok;
    stripe.num_failed += batch.num_failed;
    stripe.cache_hits += batch.cache_hits;
    stripe.cache_misses += batch.cache_misses;
    stripe.latency_total_ms += latency_sum_ms;
    stripe.latency_max_ms = std::max(stripe.latency_max_ms, batch.max_ms);
    // Algorithm R over this stripe's share of the stream: each of the
    // `seen` observations routed here ends up in the stripe reservoir with
    // equal probability. Round-robin dealing keeps the shares near-equal,
    // so concatenating the stripes at read approximates one uniform
    // reservoir over all requests.
    for (double v : latencies_ms) {
      ++stripe.seen;
      if (stripe.reservoir.size() < kStripeReservoirCapacity) {
        stripe.reservoir.push_back(v);
      } else {
        const uint64_t j = stripe.rng.UniformInt(stripe.seen);
        if (j < kStripeReservoirCapacity) {
          stripe.reservoir[static_cast<size_t>(j)] = v;
        }
      }
    }
  }
  return results;
}

void QueryEngine::BeginBatchSpan() {
  std::lock_guard<std::mutex> lock(span_mu_);
  if (active_batches_++ == 0) span_timer_.Reset();
}

void QueryEngine::EndBatchSpan() {
  std::lock_guard<std::mutex> lock(span_mu_);
  INFLEX_CHECK_GT(active_batches_, 0u);
  if (--active_batches_ == 0) {
    accumulated_span_ms_ += span_timer_.ElapsedMillis();
  }
}

double QueryEngine::ServingWallMs() const {
  std::lock_guard<std::mutex> lock(span_mu_);
  double wall = accumulated_span_ms_;
  // A busy period is still open: count its elapsed part so qps readouts
  // taken mid-traffic stay finite and current.
  if (active_batches_ > 0) wall += span_timer_.ElapsedMillis();
  return wall;
}

uint64_t QueryEngine::PublishIndex(std::shared_ptr<const InflexIndex> next,
                                   std::span<const uint32_t> old_to_new) {
  INFLEX_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t epoch = PinGeneration()->epoch + 1;
  const size_t num_points = next->num_index_points();
  generation_.store(
      std::make_shared<const Generation>(Generation{std::move(next), epoch}),
      std::memory_order_release);
  generation_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Fold the hit tally of the superseded generation into the decayed scores,
  // renumbered through the publisher's remap for eviction publishes.
  if (hit_accounting_ != nullptr) {
    hit_accounting_->Fold(epoch, num_points, old_to_new);
  }
  // Re-baseline the epoch-scoped cache counters: the bumped epoch starts the
  // new generation's warm-up from a cold (all-miss) cache. The pair is
  // sampled together and stored under stats_mu_ so readers never see a
  // hits baseline from this publish paired with a misses baseline from
  // another (lock order publish_mu_ → stats_mu_).
  const QueryCache::CounterSnapshot snap = cache_.counters();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    epoch_hits_base_ = snap.hits;
    epoch_misses_base_ = snap.misses;
  }
  return epoch;
}

void QueryEngine::RecordPublishLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++publishes_timed_;
  publish_latency_total_ms_ += ms;
  publish_latency_max_ms_ = std::max(publish_latency_max_ms_, ms);
}

void QueryEngine::RecordPrecompute(const std::string& backend, double ns) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (ServingStats::OraclePrecompute& row : precompute_) {
    if (row.backend == backend) {
      ++row.count;
      row.total_ns += ns;
      row.max_ns = std::max(row.max_ns, ns);
      return;
    }
  }
  ServingStats::OraclePrecompute row;
  row.backend = backend;
  row.count = 1;
  row.total_ns = ns;
  row.max_ns = ns;
  precompute_.push_back(std::move(row));
}

std::shared_ptr<const InflexIndex> QueryEngine::index_snapshot() const {
  return PinGeneration()->index;
}

uint64_t QueryEngine::index_epoch() const { return PinGeneration()->epoch; }

std::vector<double> QueryEngine::HitScores() const {
  if (hit_accounting_ == nullptr) return {};
  return hit_accounting_->HitScores();
}

ServingStats QueryEngine::cumulative_stats() const {
  ServingStats out;
  // Merge the stripes: counts and mean/max are exact sums. The percentile
  // estimate merges the per-stripe reservoirs WEIGHTED by each stripe's
  // observed count: a reservoir of |R_i| samples stands in for seen_i
  // observations, so each sample carries weight seen_i / |R_i|. A plain
  // concatenation would give every sample equal weight, letting a
  // lightly-loaded stripe (small seen_i, reservoir not yet thinned) skew
  // the merged p50/p95/p99 toward its own latency regime — round-robin
  // dealing keeps stripe loads near-equal under steady load, but bursty or
  // skewed arrival patterns do not deal evenly.
  std::vector<double> samples;
  std::vector<double> weights;
  samples.reserve(kLatencyReservoirCapacity);
  weights.reserve(kLatencyReservoirCapacity);
  double latency_total_ms = 0.0;
  for (const auto& stripe : stats_stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    out.num_requests += stripe->num_requests;
    out.num_ok += stripe->num_ok;
    out.num_failed += stripe->num_failed;
    out.cache_hits += stripe->cache_hits;
    out.cache_misses += stripe->cache_misses;
    latency_total_ms += stripe->latency_total_ms;
    out.max_ms = std::max(out.max_ms, stripe->latency_max_ms);
    if (!stripe->reservoir.empty()) {
      const double per_sample = static_cast<double>(stripe->seen) /
                                static_cast<double>(stripe->reservoir.size());
      samples.insert(samples.end(), stripe->reservoir.begin(),
                     stripe->reservoir.end());
      weights.insert(weights.end(), stripe->reservoir.size(), per_sample);
    }
  }
  if (out.num_requests > 0) {
    out.mean_ms = latency_total_ms / static_cast<double>(out.num_requests);
  }
  if (!samples.empty()) {
    out.p50_ms = stats::WeightedPercentile(samples, weights, 0.50);
    out.p95_ms = stats::WeightedPercentile(samples, weights, 0.95);
    out.p99_ms = stats::WeightedPercentile(samples, weights, 0.99);
    out.latency_samples = samples.size();
  }
  out.wall_ms = ServingWallMs();
  out.qps = out.wall_ms > 0.0 ? static_cast<double>(out.num_requests) /
                                    (out.wall_ms / 1e3)
                              : 0.0;
  out.generation_swaps = generation_swaps_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  // Epoch-scoped counters: the baseline pair is coherent (stored together
  // under stats_mu_, which we hold); the live pair is sampled together.
  // Queries racing a publish may be attributed to either epoch — the
  // readout is a dashboard estimate, not a ledger — so the subtraction is
  // clamped.
  const QueryCache::CounterSnapshot snap = cache_.counters();
  out.epoch_cache_hits =
      snap.hits >= epoch_hits_base_ ? snap.hits - epoch_hits_base_ : 0;
  out.epoch_cache_misses = snap.misses >= epoch_misses_base_
                               ? snap.misses - epoch_misses_base_
                               : 0;
  out.publishes_timed = publishes_timed_;
  out.admit_to_publish_mean_ms =
      publishes_timed_ > 0
          ? publish_latency_total_ms_ / static_cast<double>(publishes_timed_)
          : 0.0;
  out.admit_to_publish_max_ms = publish_latency_max_ms_;
  out.precompute = precompute_;
  out.admission_queue_depth =
      admission_queue_depth_.load(std::memory_order_relaxed);
  out.admission_queue_peak =
      admission_queue_peak_.load(std::memory_order_relaxed);
  out.shed_count = shed_count_.load(std::memory_order_relaxed);
  out.deadline_expired_count =
      deadline_expired_count_.load(std::memory_order_relaxed);
  return out;
}

void QueryEngine::ReportAdmissionQueue(size_t depth) {
  admission_queue_depth_.store(depth, std::memory_order_relaxed);
  size_t peak = admission_queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !admission_queue_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

void QueryEngine::RecordLoadShed(uint64_t count) {
  shed_count_.fetch_add(count, std::memory_order_relaxed);
}

void QueryEngine::RecordDeadlineExpired(uint64_t count) {
  deadline_expired_count_.fetch_add(count, std::memory_order_relaxed);
}

}  // namespace core
}  // namespace inflex
