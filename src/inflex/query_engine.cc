#include "inflex/query_engine.h"

#include <algorithm>
#include <cstdio>

#include "stats/descriptive.h"
#include "util/timer.h"

namespace inflex {
namespace core {

double ServingStats::hit_rate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

double ServingStats::epoch_hit_rate() const {
  const uint64_t total = epoch_cache_hits + epoch_cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(epoch_cache_hits) /
                          static_cast<double>(total);
}

std::string ServingStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%zu req in %.2f ms | %.0f QPS | hit rate %.1f%% | "
                "p50 %.3f ms p95 %.3f ms p99 %.3f ms max %.3f ms | %zu failed"
                " | %llu swaps, epoch hit rate %.1f%%, "
                "admit->publish mean %.1f ms max %.1f ms | "
                "queue %zu (peak %zu), %llu shed, %llu expired",
                num_requests, wall_ms, qps, 100.0 * hit_rate(), p50_ms, p95_ms,
                p99_ms, max_ms, num_failed,
                static_cast<unsigned long long>(generation_swaps),
                100.0 * epoch_hit_rate(), admit_to_publish_mean_ms,
                admit_to_publish_max_ms, admission_queue_depth,
                admission_queue_peak,
                static_cast<unsigned long long>(shed_count),
                static_cast<unsigned long long>(deadline_expired_count));
  return buf;
}

QueryEngine::QueryEngine(std::shared_ptr<const InflexIndex> index,
                         const QueryEngineOptions& options)
    : options_(options), cache_(options.cache) {
  INFLEX_CHECK(index != nullptr);
  if (options_.enable_hit_accounting) {
    PointHitAccounting::Options hopts;
    hopts.decay = options_.hit_decay;
    hopts.num_stripes = options_.hit_stripes;
    hit_accounting_ = std::make_unique<PointHitAccounting>(
        index->num_index_points(), hopts);
  }
  generation_.store(
      std::make_shared<const Generation>(Generation{std::move(index), 0}),
      std::memory_order_release);
  latency_reservoir_.reserve(kLatencyReservoirCapacity);
}

QueryEngine::QueryEngine(const InflexIndex* index,
                         const QueryEngineOptions& options)
    : QueryEngine(std::shared_ptr<const InflexIndex>(
                      std::shared_ptr<const InflexIndex>(), index),
                  options) {}

Result<QueryResult> QueryEngine::Query(const QueryRequest& request) {
  // Pin the generation: the shared_ptr copy keeps this index (and the
  // epoch the cache key is derived from) alive and consistent for the whole
  // request, regardless of concurrent PublishIndex calls.
  const std::shared_ptr<const Generation> gen = PinGeneration();
  Result<QueryResult> result =
      options_.enable_cache
          ? cache_.Query(*gen->index, request.item, request.k, request.options,
                         gen->epoch)
          : gen->index->Query(request.item, request.k, request.options);
  if (result.ok()) {
    result.ValueOrDie().generation = gen->epoch;
    // Credit the index points that backed this answer (cache hits included:
    // a point behind a hot cached answer is still earning its keep).
    if (hit_accounting_ != nullptr) {
      hit_accounting_->Record(gen->epoch, result.ValueOrDie().neighbors_used);
    }
  }
  return result;
}

std::vector<Result<QueryResult>> QueryEngine::QueryBatch(
    std::span<const QueryRequest> requests, ServingStats* stats) {
  const size_t n = requests.size();
  std::vector<Result<QueryResult>> results(n, Status::Internal("not served"));
  std::vector<double> latencies_ms(n, 0.0);
  const uint64_t hits_before = cache_.hits();
  const uint64_t misses_before = cache_.misses();

  Timer wall;
  ParallelFor(
      0, n,
      [&](size_t i) {
        Timer t;
        results[i] = Query(requests[i]);
        latencies_ms[i] = t.ElapsedMillis();
      },
      options_.pool);

  ServingStats batch;
  batch.num_requests = n;
  for (const auto& r : results) {
    if (r.ok()) {
      ++batch.num_ok;
    } else {
      ++batch.num_failed;
    }
  }
  batch.cache_hits = cache_.hits() - hits_before;
  batch.cache_misses = cache_.misses() - misses_before;
  batch.wall_ms = wall.ElapsedMillis();
  batch.qps = batch.wall_ms > 0.0
                  ? static_cast<double>(n) / (batch.wall_ms / 1e3)
                  : 0.0;
  if (n > 0) {
    batch.mean_ms = stats::Mean(latencies_ms);
    batch.p50_ms = stats::Percentile(latencies_ms, 0.50);
    batch.p95_ms = stats::Percentile(latencies_ms, 0.95);
    batch.p99_ms = stats::Percentile(latencies_ms, 0.99);
    batch.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
    batch.latency_samples = n;
  }
  if (stats != nullptr) *stats = batch;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Exact running aggregates first.
    const double prev_total =
        cumulative_.mean_ms * static_cast<double>(cumulative_.num_requests);
    cumulative_.num_requests += batch.num_requests;
    cumulative_.num_ok += batch.num_ok;
    cumulative_.num_failed += batch.num_failed;
    cumulative_.cache_hits += batch.cache_hits;
    cumulative_.cache_misses += batch.cache_misses;
    cumulative_.wall_ms += batch.wall_ms;
    cumulative_.qps = cumulative_.wall_ms > 0.0
                          ? static_cast<double>(cumulative_.num_requests) /
                                (cumulative_.wall_ms / 1e3)
                          : 0.0;
    if (cumulative_.num_requests > 0) {
      cumulative_.mean_ms =
          (prev_total + batch.mean_ms * static_cast<double>(n)) /
          static_cast<double>(cumulative_.num_requests);
    }
    cumulative_.max_ms = std::max(cumulative_.max_ms, batch.max_ms);
    // Fold every latency into the bounded reservoir (Algorithm R): each of
    // the `latency_seen_` observations ends up in the reservoir with equal
    // probability, so cumulative percentiles estimate the distribution over
    // ALL requests served so far, not just the last batch.
    for (double v : latencies_ms) {
      ++latency_seen_;
      if (latency_reservoir_.size() < kLatencyReservoirCapacity) {
        latency_reservoir_.push_back(v);
      } else {
        const uint64_t j = reservoir_rng_.UniformInt(latency_seen_);
        if (j < kLatencyReservoirCapacity) {
          latency_reservoir_[static_cast<size_t>(j)] = v;
        }
      }
    }
  }
  return results;
}

uint64_t QueryEngine::PublishIndex(std::shared_ptr<const InflexIndex> next,
                                   std::span<const uint32_t> old_to_new) {
  INFLEX_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(publish_mu_);
  const uint64_t epoch = PinGeneration()->epoch + 1;
  const size_t num_points = next->num_index_points();
  generation_.store(
      std::make_shared<const Generation>(Generation{std::move(next), epoch}),
      std::memory_order_release);
  generation_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Fold the hit tally of the superseded generation into the decayed scores,
  // renumbered through the publisher's remap for eviction publishes.
  if (hit_accounting_ != nullptr) {
    hit_accounting_->Fold(epoch, num_points, old_to_new);
  }
  // Re-baseline the epoch-scoped cache counters: the bumped epoch starts the
  // new generation's warm-up from a cold (all-miss) cache. The pair is
  // sampled together and stored under stats_mu_ so readers never see a
  // hits baseline from this publish paired with a misses baseline from
  // another (lock order publish_mu_ → stats_mu_).
  const QueryCache::CounterSnapshot snap = cache_.counters();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    epoch_hits_base_ = snap.hits;
    epoch_misses_base_ = snap.misses;
  }
  return epoch;
}

void QueryEngine::RecordPublishLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++publishes_timed_;
  publish_latency_total_ms_ += ms;
  publish_latency_max_ms_ = std::max(publish_latency_max_ms_, ms);
}

std::shared_ptr<const InflexIndex> QueryEngine::index_snapshot() const {
  return PinGeneration()->index;
}

uint64_t QueryEngine::index_epoch() const { return PinGeneration()->epoch; }

std::vector<double> QueryEngine::HitScores() const {
  if (hit_accounting_ == nullptr) return {};
  return hit_accounting_->HitScores();
}

ServingStats QueryEngine::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServingStats out = cumulative_;
  if (!latency_reservoir_.empty()) {
    out.p50_ms = stats::Percentile(latency_reservoir_, 0.50);
    out.p95_ms = stats::Percentile(latency_reservoir_, 0.95);
    out.p99_ms = stats::Percentile(latency_reservoir_, 0.99);
    out.latency_samples = latency_reservoir_.size();
  }
  out.generation_swaps = generation_swaps_.load(std::memory_order_relaxed);
  // Epoch-scoped counters: the baseline pair is coherent (stored together
  // under stats_mu_, which we hold); the live pair is sampled together.
  // Queries racing a publish may be attributed to either epoch — the
  // readout is a dashboard estimate, not a ledger — so the subtraction is
  // clamped.
  const QueryCache::CounterSnapshot snap = cache_.counters();
  out.epoch_cache_hits =
      snap.hits >= epoch_hits_base_ ? snap.hits - epoch_hits_base_ : 0;
  out.epoch_cache_misses = snap.misses >= epoch_misses_base_
                               ? snap.misses - epoch_misses_base_
                               : 0;
  out.publishes_timed = publishes_timed_;
  out.admit_to_publish_mean_ms =
      publishes_timed_ > 0
          ? publish_latency_total_ms_ / static_cast<double>(publishes_timed_)
          : 0.0;
  out.admit_to_publish_max_ms = publish_latency_max_ms_;
  out.admission_queue_depth =
      admission_queue_depth_.load(std::memory_order_relaxed);
  out.admission_queue_peak =
      admission_queue_peak_.load(std::memory_order_relaxed);
  out.shed_count = shed_count_.load(std::memory_order_relaxed);
  out.deadline_expired_count =
      deadline_expired_count_.load(std::memory_order_relaxed);
  return out;
}

void QueryEngine::ReportAdmissionQueue(size_t depth) {
  admission_queue_depth_.store(depth, std::memory_order_relaxed);
  size_t peak = admission_queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak && !admission_queue_peak_.compare_exchange_weak(
                             peak, depth, std::memory_order_relaxed)) {
  }
}

void QueryEngine::RecordLoadShed(uint64_t count) {
  shed_count_.fetch_add(count, std::memory_order_relaxed);
}

void QueryEngine::RecordDeadlineExpired(uint64_t count) {
  deadline_expired_count_.fetch_add(count, std::memory_order_relaxed);
}

}  // namespace core
}  // namespace inflex
