#include "inflex/query_engine.h"

#include <algorithm>
#include <cstdio>

#include "stats/descriptive.h"
#include "util/timer.h"

namespace inflex {
namespace core {

double ServingStats::hit_rate() const {
  const uint64_t total = cache_hits + cache_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(cache_hits) /
                          static_cast<double>(total);
}

std::string ServingStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu req in %.2f ms | %.0f QPS | hit rate %.1f%% | "
                "p50 %.3f ms p95 %.3f ms p99 %.3f ms max %.3f ms | %zu failed",
                num_requests, wall_ms, qps, 100.0 * hit_rate(), p50_ms, p95_ms,
                p99_ms, max_ms, num_failed);
  return buf;
}

QueryEngine::QueryEngine(const InflexIndex* index,
                         const QueryEngineOptions& options)
    : index_(index), options_(options), cache_(options.cache) {
  INFLEX_CHECK(index_ != nullptr);
}

Result<QueryResult> QueryEngine::Query(const QueryRequest& request) {
  if (options_.enable_cache) {
    return cache_.Query(*index_, request.item, request.k, request.options);
  }
  return index_->Query(request.item, request.k, request.options);
}

std::vector<Result<QueryResult>> QueryEngine::QueryBatch(
    std::span<const QueryRequest> requests, ServingStats* stats) {
  const size_t n = requests.size();
  std::vector<Result<QueryResult>> results(n, Status::Internal("not served"));
  std::vector<double> latencies_ms(n, 0.0);
  const uint64_t hits_before = cache_.hits();
  const uint64_t misses_before = cache_.misses();

  Timer wall;
  ParallelFor(
      0, n,
      [&](size_t i) {
        Timer t;
        results[i] = Query(requests[i]);
        latencies_ms[i] = t.ElapsedMillis();
      },
      options_.pool);

  ServingStats batch;
  batch.num_requests = n;
  for (const auto& r : results) {
    if (r.ok()) {
      ++batch.num_ok;
    } else {
      ++batch.num_failed;
    }
  }
  batch.cache_hits = cache_.hits() - hits_before;
  batch.cache_misses = cache_.misses() - misses_before;
  batch.wall_ms = wall.ElapsedMillis();
  batch.qps = batch.wall_ms > 0.0
                  ? static_cast<double>(n) / (batch.wall_ms / 1e3)
                  : 0.0;
  if (n > 0) {
    batch.mean_ms = stats::Mean(latencies_ms);
    batch.p50_ms = stats::Percentile(latencies_ms, 0.50);
    batch.p95_ms = stats::Percentile(latencies_ms, 0.95);
    batch.p99_ms = stats::Percentile(latencies_ms, 0.99);
    batch.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
  }
  if (stats != nullptr) *stats = batch;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    cumulative_.num_requests += batch.num_requests;
    cumulative_.num_ok += batch.num_ok;
    cumulative_.num_failed += batch.num_failed;
    cumulative_.cache_hits += batch.cache_hits;
    cumulative_.cache_misses += batch.cache_misses;
    cumulative_.wall_ms += batch.wall_ms;
    cumulative_.qps = cumulative_.wall_ms > 0.0
                          ? static_cast<double>(cumulative_.num_requests) /
                                (cumulative_.wall_ms / 1e3)
                          : 0.0;
    // Percentiles are per-batch quantities; report the latest batch's.
    cumulative_.mean_ms = batch.mean_ms;
    cumulative_.p50_ms = batch.p50_ms;
    cumulative_.p95_ms = batch.p95_ms;
    cumulative_.p99_ms = batch.p99_ms;
    cumulative_.max_ms = std::max(cumulative_.max_ms, batch.max_ms);
  }
  return results;
}

ServingStats QueryEngine::cumulative_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return cumulative_;
}

}  // namespace core
}  // namespace inflex
