#ifndef INFLEX_CLUSTER_GMEANS_H_
#define INFLEX_CLUSTER_GMEANS_H_

#include <vector>

#include "cluster/kmeans.h"
#include "simplex/topic_distribution.h"
#include "util/status.h"

namespace inflex {
namespace cluster {

/// \brief Options for G-means (Hamerly & Elkan 2003): learn the number of
/// clusters by splitting any cluster whose members, projected onto the
/// direction connecting its two tentative children, fail an Anderson-Darling
/// normality test.
struct GMeansOptions {
  /// Significance level of the Anderson-Darling test; normality is rejected
  /// (and the cluster split) when p < ad_alpha.
  double ad_alpha = 0.05;
  /// Hard cap on the number of clusters produced.
  size_t max_clusters = 16;
  /// Clusters smaller than this are never split (the AD test needs a sample).
  size_t min_cluster_size = 8;
  /// Divergence used for the inner 2-means splits.
  BregmanDivergenceKind divergence = BregmanDivergenceKind::kKl;
  uint64_t seed = 1;
};

/// Learns a clustering whose size is driven by the data: starts from a single
/// cluster and recursively 2-splits non-Gaussian clusters. The paper uses
/// this procedure to choose the bb-tree branching factor at every node.
/// Fails on empty input or inconsistent dimensions.
Result<KMeansResult> GMeans(const std::vector<simplex::TopicVector>& points,
                            const GMeansOptions& options);

/// The G-means split test in isolation (exposed for the bb-tree and tests):
/// projects `points` onto `direction` and Anderson-Darling-tests the
/// projections. Returns true when the cluster looks Gaussian (should NOT be
/// split). Degenerate inputs (tiny clusters, zero direction) are reported as
/// Gaussian, i.e. never split.
bool ProjectedGaussianTest(const std::vector<simplex::TopicVector>& points,
                           const std::vector<double>& direction,
                           double ad_alpha);

}  // namespace cluster
}  // namespace inflex

#endif  // INFLEX_CLUSTER_GMEANS_H_
