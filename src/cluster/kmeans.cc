#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simplex/divergence.h"
#include "util/check.h"

namespace inflex {
namespace cluster {

double BregmanDivergence(BregmanDivergenceKind kind,
                         const simplex::TopicVector& x,
                         const simplex::TopicVector& center) {
  switch (kind) {
    case BregmanDivergenceKind::kKl:
      return simplex::KlDivergence(x, center);
    case BregmanDivergenceKind::kSquaredEuclidean:
      return simplex::SquaredEuclidean(x, center);
  }
  INFLEX_CHECK(false);
  return 0.0;
}

namespace {

// K-means++ seeding: first center uniform, then proportional to the current
// divergence to the closest chosen center.
std::vector<simplex::TopicVector> SeedCenters(
    const std::vector<simplex::TopicVector>& points, size_t k,
    BregmanDivergenceKind kind, Rng* rng) {
  const size_t n = points.size();
  std::vector<simplex::TopicVector> centers;
  centers.reserve(k);
  centers.push_back(points[rng->UniformInt(n)]);

  std::vector<double> min_div(n);
  for (size_t i = 0; i < n; ++i) {
    min_div[i] = BregmanDivergence(kind, points[i], centers.back());
  }
  while (centers.size() < k) {
    double total = 0.0;
    for (double d : min_div) total += d;
    size_t chosen;
    if (total <= 0.0) {
      // All points coincide with existing centers; pick uniformly.
      chosen = rng->UniformInt(n);
    } else {
      double r = rng->Uniform() * total;
      chosen = n - 1;
      for (size_t i = 0; i < n; ++i) {
        r -= min_div[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centers.push_back(points[chosen]);
    for (size_t i = 0; i < n; ++i) {
      min_div[i] = std::min(
          min_div[i], BregmanDivergence(kind, points[i], centers.back()));
    }
  }
  return centers;
}

}  // namespace

Result<KMeansResult> KMeansPlusPlus(
    const std::vector<simplex::TopicVector>& points,
    const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means requires at least one point");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("k-means requires num_clusters >= 1");
  }
  const size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("k-means points disagree on dimension");
    }
  }
  const size_t n = points.size();
  const size_t k = std::min(options.num_clusters, n);

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedCenters(points, k, options.divergence, &rng);
  result.assignment.assign(n, 0);

  std::vector<double> sums(k * dim);
  std::vector<size_t> counts(k);
  double prev_objective = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double objective = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        const double d =
            BregmanDivergence(options.divergence, points[i],
                              result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<uint32_t>(c);
        }
      }
      result.assignment[i] = best_c;
      objective += best;
    }
    result.objective = objective;

    // Update step: arithmetic mean (the right-type Bregman centroid).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = result.assignment[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c * dim + d] += points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.UniformInt(n)];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] =
            sums[c * dim + d] / static_cast<double>(counts[c]);
      }
    }

    if (prev_objective - objective <=
        options.tolerance * std::max(1.0, prev_objective)) {
      break;
    }
    prev_objective = objective;
  }
  return result;
}

}  // namespace cluster
}  // namespace inflex
