#ifndef INFLEX_CLUSTER_KMEANS_H_
#define INFLEX_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "simplex/topic_distribution.h"
#include "util/random.h"
#include "util/status.h"

namespace inflex {
namespace cluster {

/// Bregman divergences supported by the clustering layer. For every Bregman
/// divergence d_f(x, μ) the minimizer of Σ_i d_f(x_i, μ) over μ is the
/// arithmetic mean (Banerjee et al. 2005), so Lloyd's update is shared; only
/// the assignment step differs.
enum class BregmanDivergenceKind {
  /// d(x, μ) = D_KL(x ‖ μ) — the paper's dissimilarity (generator: negative
  /// Shannon entropy).
  kKl,
  /// d(x, μ) = ‖x − μ‖² — classic k-means (generator: squared norm).
  kSquaredEuclidean,
};

/// Evaluates the chosen divergence d(x, center).
double BregmanDivergence(BregmanDivergenceKind kind,
                         const simplex::TopicVector& x,
                         const simplex::TopicVector& center);

/// \brief Options for Bregman K-means++.
struct KMeansOptions {
  size_t num_clusters = 8;
  int max_iterations = 100;
  /// Stop when the relative objective improvement falls below this.
  double tolerance = 1e-7;
  BregmanDivergenceKind divergence = BregmanDivergenceKind::kKl;
  uint64_t seed = 1;
};

/// \brief Clustering output.
struct KMeansResult {
  /// One centroid per cluster (arithmetic mean of members).
  std::vector<simplex::TopicVector> centroids;
  /// Cluster id per input point.
  std::vector<uint32_t> assignment;
  /// Final Σ_i d(x_i, μ_{a(i)}).
  double objective = 0.0;
  int iterations = 0;
};

/// Runs K-means++ seeding (Arthur & Vassilvitskii 2007, with the divergence
/// replacing squared distance — "Bregman K-means++" as used by the paper for
/// index-point selection and bb-tree construction) followed by Lloyd
/// iterations. Fails when `points` is empty, dimensions disagree, or
/// num_clusters is 0. When num_clusters >= points.size(), every point
/// becomes its own centroid.
Result<KMeansResult> KMeansPlusPlus(
    const std::vector<simplex::TopicVector>& points,
    const KMeansOptions& options);

}  // namespace cluster
}  // namespace inflex

#endif  // INFLEX_CLUSTER_KMEANS_H_
