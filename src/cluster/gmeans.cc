#include "cluster/gmeans.h"

#include <algorithm>
#include <cmath>

#include "stats/anderson_darling.h"
#include "util/check.h"

namespace inflex {
namespace cluster {

bool ProjectedGaussianTest(const std::vector<simplex::TopicVector>& points,
                           const std::vector<double>& direction,
                           double ad_alpha) {
  if (points.size() < 5) return true;
  double norm_sq = 0.0;
  for (double v : direction) norm_sq += v * v;
  if (norm_sq <= 0.0) return true;

  std::vector<double> projections(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    INFLEX_CHECK_EQ(points[i].size(), direction.size());
    double dot = 0.0;
    for (size_t d = 0; d < direction.size(); ++d) {
      dot += points[i][d] * direction[d];
    }
    projections[i] = dot / std::sqrt(norm_sq);
  }
  auto ad = stats::AndersonDarlingNormality(projections);
  if (!ad.ok()) return true;  // degenerate sample: do not split
  return ad.ValueOrDie().IsNormal(ad_alpha);
}

namespace {

struct Cluster {
  std::vector<uint32_t> member_ids;  // indices into the input point set
  simplex::TopicVector centroid;
  bool frozen = false;  // Gaussian, or too small to test: never re-split
};

simplex::TopicVector Mean(const std::vector<simplex::TopicVector>& points,
                          const std::vector<uint32_t>& ids) {
  simplex::TopicVector m(points.front().size(), 0.0);
  for (uint32_t id : ids) {
    for (size_t d = 0; d < m.size(); ++d) m[d] += points[id][d];
  }
  for (double& v : m) v /= static_cast<double>(ids.size());
  return m;
}

}  // namespace

Result<KMeansResult> GMeans(const std::vector<simplex::TopicVector>& points,
                            const GMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("G-means requires at least one point");
  }
  const size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("G-means points disagree on dimension");
    }
  }
  if (options.max_clusters == 0) {
    return Status::InvalidArgument("G-means requires max_clusters >= 1");
  }

  Rng rng(options.seed);
  std::vector<Cluster> clusters(1);
  clusters[0].member_ids.resize(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    clusters[0].member_ids[i] = i;
  }
  clusters[0].centroid = Mean(points, clusters[0].member_ids);

  bool changed = true;
  while (changed && clusters.size() < options.max_clusters) {
    changed = false;
    const size_t current = clusters.size();
    for (size_t c = 0; c < current && clusters.size() < options.max_clusters;
         ++c) {
      Cluster& cl = clusters[c];
      if (cl.frozen) continue;
      if (cl.member_ids.size() < options.min_cluster_size) {
        cl.frozen = true;
        continue;
      }
      // Tentative 2-split of this cluster.
      std::vector<simplex::TopicVector> members;
      members.reserve(cl.member_ids.size());
      for (uint32_t id : cl.member_ids) members.push_back(points[id]);

      KMeansOptions split_opts;
      split_opts.num_clusters = 2;
      split_opts.divergence = options.divergence;
      split_opts.seed = rng.Next();
      auto split = KMeansPlusPlus(members, split_opts);
      if (!split.ok()) return split.status();
      const KMeansResult& sr = split.ValueOrDie();
      if (sr.centroids.size() < 2) {
        cl.frozen = true;
        continue;
      }

      // Direction v = c1 − c2 between the tentative children (Hamerly &
      // Elkan); if the projected members look Gaussian, keep the parent.
      std::vector<double> direction(dim);
      for (size_t d = 0; d < dim; ++d) {
        direction[d] = sr.centroids[0][d] - sr.centroids[1][d];
      }
      if (ProjectedGaussianTest(members, direction, options.ad_alpha)) {
        cl.frozen = true;
        continue;
      }

      // Reject normality: adopt the split.
      Cluster right;
      std::vector<uint32_t> left_ids;
      for (size_t i = 0; i < members.size(); ++i) {
        if (sr.assignment[i] == 0) {
          left_ids.push_back(cl.member_ids[i]);
        } else {
          right.member_ids.push_back(cl.member_ids[i]);
        }
      }
      if (left_ids.empty() || right.member_ids.empty()) {
        cl.frozen = true;
        continue;
      }
      cl.member_ids = std::move(left_ids);
      cl.centroid = Mean(points, cl.member_ids);
      right.centroid = Mean(points, right.member_ids);
      clusters.push_back(std::move(right));
      changed = true;
    }
  }

  KMeansResult result;
  result.assignment.assign(points.size(), 0);
  result.centroids.reserve(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    result.centroids.push_back(clusters[c].centroid);
    for (uint32_t id : clusters[c].member_ids) {
      result.assignment[id] = static_cast<uint32_t>(c);
    }
  }
  result.objective = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    result.objective += BregmanDivergence(
        options.divergence, points[i], result.centroids[result.assignment[i]]);
  }
  result.iterations = static_cast<int>(clusters.size());
  return result;
}

}  // namespace cluster
}  // namespace inflex
